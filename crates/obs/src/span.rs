//! Request-scoped tracing and the always-on flight recorder.
//!
//! This module is the cross-process half of the observability story: where
//! [`crate::Recorder`] traces one simulation cycle-by-cycle, the span layer
//! ties a *request* together across the server, the experiment engine, the
//! result store and the fault plane.
//!
//! * **Trace ids** are 63-bit non-zero integers minted from the seeded
//!   deterministic rng ([`TraceIdGen`]) so tests and the chaos harness can
//!   reproduce the exact same ids run after run.
//! * **Trace context** is a thread-local `(trace, span, seq)` triple. It is
//!   [`Copy`] ([`TraceCtx`]) so it can be captured on one thread (say, the
//!   server accept loop) and [`resume`]d on another (a worker) — that is how
//!   a span survives the queue hand-off.
//! * **[`SpanScope`]** is an RAII guard recording integer-only begin/end
//!   events; [`begin`]/[`OpenSpan::end`] are the manual form for spans that
//!   cross threads.
//! * **[`FlightRecorder`]** is a fixed-capacity, overwrite-oldest ring of
//!   event slots written with relaxed atomics — cheap enough to leave armed
//!   on production paths. A per-slot sequence word makes reads best-effort
//!   consistent: a scrape concurrent with heavy writing may skip (never
//!   invent) records.
//!
//! Timestamps come from a process-wide clock with two modes: wall
//! microseconds since process start (the default), or a **logical clock**
//! ([`logical_clock_guard`]) where each trace stamps its events with its own
//! 0,1,2,… sequence — that is what makes flight dumps byte-deterministic in
//! tests and the chaos harness regardless of thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use tdo_metrics::{Counter, Registry};
use tdo_rand::Rng;

/// Mask keeping ids and arguments within `i64` range so every value in a
/// flight dump round-trips through integer-only JSONL.
pub const ID_MASK: u64 = i64::MAX as u64;

/// Capacity (in events) of the process-global flight recorder.
pub const FLIGHT_CAPACITY: usize = 4096;

/// What a flight event describes. The names are the `"kind"` strings in
/// dumped JSONL and are stable schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A whole server request (root span of a trace).
    Request = 0,
    /// Time spent queued between accept and a worker picking the job up.
    QueueWait = 1,
    /// One experiment-engine cell execution (simulate or recall).
    RunCell = 2,
    /// A result-store read.
    StoreGet = 3,
    /// A result-store write.
    StorePut = 4,
    /// A result-store verification pass.
    StoreVerify = 5,
    /// Point event: a fault-plane site fired (`arg` = site index).
    Fault = 6,
    /// Point event: the request was shed at a full queue.
    Shed = 7,
    /// Point event: a follower coalesced onto a leader
    /// (`arg` = leader trace id).
    Coalesce = 8,
    /// Point event: a flight dump was triggered (`arg` = reason code).
    Dump = 9,
    /// A generic point marker.
    Mark = 10,
}

/// Kind names, indexed by the `FlightKind` discriminant.
pub const FLIGHT_KIND_NAMES: [&str; 11] = [
    "request",
    "queue_wait",
    "run_cell",
    "store_get",
    "store_put",
    "store_verify",
    "fault",
    "shed",
    "coalesce",
    "dump",
    "mark",
];

impl FlightKind {
    /// The stable schema name of this kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        FLIGHT_KIND_NAMES[self as usize]
    }

    fn from_index(i: u64) -> Option<FlightKind> {
        use FlightKind::{
            Coalesce, Dump, Fault, Mark, QueueWait, Request, RunCell, Shed, StoreGet, StorePut,
            StoreVerify,
        };
        [
            Request,
            QueueWait,
            RunCell,
            StoreGet,
            StorePut,
            StoreVerify,
            Fault,
            Shed,
            Coalesce,
            Dump,
            Mark,
        ]
        .get(i as usize)
        .copied()
    }
}

/// Whether a record opens a span, closes one, or is instantaneous.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EvKind {
    /// Span opens.
    Begin = 0,
    /// Span closes.
    End = 1,
    /// Instantaneous point event.
    Point = 2,
}

/// Event names, indexed by the `EvKind` discriminant.
pub const EV_NAMES: [&str; 3] = ["span_begin", "span_end", "point"];

impl EvKind {
    /// The stable schema name of this event type.
    #[must_use]
    pub fn name(self) -> &'static str {
        EV_NAMES[self as usize]
    }

    fn from_index(i: u64) -> Option<EvKind> {
        [EvKind::Begin, EvKind::End, EvKind::Point].get(i as usize).copied()
    }
}

/// One decoded flight-recorder record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Timestamp: wall µs since process start, or the per-trace sequence
    /// number under the logical clock.
    pub ts: u64,
    /// Owning trace id (0 = recorded outside any trace).
    pub trace: u64,
    /// Span id the record belongs to (0 for points outside a span).
    pub span: u64,
    /// Parent span id (0 = trace root).
    pub parent: u64,
    /// What the record describes.
    pub kind: FlightKind,
    /// Begin / end / point.
    pub ev: EvKind,
    /// Kind-specific integer payload.
    pub arg: u64,
}

impl FlightRecord {
    /// Serializes the record as one flight-JSONL line (no newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace\":{},\"ts\":{},\"event\":\"{}\",\"kind\":\"{}\",\"span\":{},\"parent\":{},\"arg\":{}}}",
            self.trace,
            self.ts,
            self.ev.name(),
            self.kind.name(),
            self.span,
            self.parent,
            self.arg
        )
    }
}

const SLOT_WORDS: usize = 7; // seq, ts, trace, span, parent, meta, arg

struct Slot {
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot { words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// A fixed-capacity, overwrite-oldest ring buffer of flight records.
///
/// Writers claim a monotonically increasing ticket with one relaxed
/// `fetch_add`, then publish the record into slot `ticket % capacity`
/// guarded by a per-slot sequence word (0 = being written). Readers skip
/// slots that are empty, in-flight, or that change underneath them — a
/// snapshot is best-effort, never blocking a writer.
///
/// Overwrite accounting is exact by construction: every ticket at or past
/// `capacity` displaces exactly one older record.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    head: AtomicU64,
    paused: AtomicBool,
    recorded: Arc<Counter>,
    overwritten: Arc<Counter>,
    dropped: Arc<Counter>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded.get())
            .finish()
    }
}

impl FlightRecorder {
    /// A fresh recorder holding up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            paused: AtomicBool::new(false),
            recorded: Arc::new(Counter::new()),
            overwritten: Arc::new(Counter::new()),
            dropped: Arc::new(Counter::new()),
        }
    }

    /// Number of slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records accepted since creation (monotonic; survives
    /// [`FlightRecorder::reset`]).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// Records displaced by newer ones (monotonic).
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten.get()
    }

    /// Records refused because the recorder was paused (monotonic).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Pauses or resumes recording. While paused, records are counted as
    /// dropped instead of written.
    pub fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::Relaxed);
    }

    /// Writes one record into the ring.
    pub fn record_raw(&self, rec: &FlightRecord) {
        if self.paused.load(Ordering::Relaxed) {
            self.dropped.inc();
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        self.recorded.inc();
        if ticket >= self.slots.len() as u64 {
            self.overwritten.inc();
        }
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let meta = ((rec.kind as u64) << 8) | rec.ev as u64;
        slot.words[0].store(0, Ordering::Release); // mark in-flight
        slot.words[1].store(rec.ts, Ordering::Relaxed);
        slot.words[2].store(rec.trace, Ordering::Relaxed);
        slot.words[3].store(rec.span, Ordering::Relaxed);
        slot.words[4].store(rec.parent, Ordering::Relaxed);
        slot.words[5].store(meta, Ordering::Relaxed);
        slot.words[6].store(rec.arg, Ordering::Relaxed);
        slot.words[0].store(ticket + 1, Ordering::Release); // publish
    }

    /// Clears the ring (head and every slot). Counters are monotonic and
    /// keep their values. Intended for tests and the chaos harness, which
    /// need a dump that reflects only their own activity.
    pub fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
        for slot in &self.slots {
            slot.words[0].store(0, Ordering::Release);
        }
    }

    /// Best-effort consistent copy of the ring, sorted by
    /// `(trace, ts, …)` so the result is deterministic whenever per-trace
    /// timestamps are (which the logical clock guarantees).
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let seq0 = slot.words[0].load(Ordering::Acquire);
            if seq0 == 0 {
                continue; // never written, or mid-write
            }
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            let seq1 = slot.words[0].load(Ordering::Acquire);
            if seq0 != seq1 {
                continue; // torn by a concurrent writer
            }
            let (Some(kind), Some(ev)) =
                (FlightKind::from_index(words[5] >> 8), EvKind::from_index(words[5] & 0xFF))
            else {
                continue;
            };
            out.push(FlightRecord {
                ts: words[1],
                trace: words[2],
                span: words[3],
                parent: words[4],
                kind,
                ev,
                arg: words[6],
            });
        }
        out.sort_by_key(|r| (r.trace, r.ts, r.ev as u8, r.kind as u8, r.span, r.arg));
        out
    }

    /// Serializes a snapshot as flight JSONL (one record per line).
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for rec in self.snapshot() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }

    /// Registers the recorder's drop/overwrite counters with a metrics
    /// registry.
    pub fn register_metrics(&self, reg: &Registry) {
        reg.register_counter(
            "tdo_obs_flight_recorded_total",
            &[],
            "Flight-recorder events accepted.",
            Arc::clone(&self.recorded),
        );
        reg.register_counter(
            "tdo_obs_flight_overwritten_total",
            &[],
            "Flight-recorder events displaced by newer ones.",
            Arc::clone(&self.overwritten),
        );
        reg.register_counter(
            "tdo_obs_flight_dropped_total",
            &[],
            "Flight-recorder events refused while paused.",
            Arc::clone(&self.dropped),
        );
    }
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global always-on flight recorder.
pub fn global() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(FLIGHT_CAPACITY))
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static LOGICAL_CLOCK: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn wall_us() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Guard switching the flight clock to logical (per-trace 0,1,2,…) mode;
/// the previous mode is restored on drop. Logical mode is what makes
/// dumps byte-deterministic in tests and the chaos harness.
#[derive(Debug)]
pub struct ClockGuard {
    prev: bool,
}

/// Switches the flight clock to logical mode until the guard drops.
#[must_use]
pub fn logical_clock_guard() -> ClockGuard {
    ClockGuard { prev: LOGICAL_CLOCK.swap(true, Ordering::Relaxed) }
}

impl Drop for ClockGuard {
    fn drop(&mut self) {
        LOGICAL_CLOCK.store(self.prev, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

/// A copyable trace context: enough state to hand a trace from one thread
/// to another ([`current`] on the source, [`resume`] on the target).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// The owning trace id (0 = no trace).
    pub trace: u64,
    /// The innermost open span id (0 = at trace root).
    pub span: u64,
    /// Per-trace event sequence number; doubles as the timestamp under the
    /// logical clock and salts span-id minting.
    pub seq: u64,
}

impl TraceCtx {
    /// A fresh context at the root of `trace` with sequence zero.
    #[must_use]
    pub fn fresh(trace: u64) -> TraceCtx {
        TraceCtx { trace, span: 0, seq: 0 }
    }
}

thread_local! {
    static CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx { trace: 0, span: 0, seq: 0 }) };
}

/// The calling thread's current trace context.
#[must_use]
pub fn current() -> TraceCtx {
    CTX.with(Cell::get)
}

/// Guard installing a trace context on this thread; the previous context
/// is restored on drop.
#[derive(Debug)]
pub struct CtxGuard {
    prev: TraceCtx,
}

/// Installs `ctx` as this thread's trace context until the guard drops.
#[must_use]
pub fn resume(ctx: TraceCtx) -> CtxGuard {
    let prev = CTX.with(|c| c.replace(ctx));
    CtxGuard { prev }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Consumes one sequence number and returns the timestamp for a record:
/// the sequence itself under the logical clock, wall µs otherwise.
fn next_stamp() -> u64 {
    let mut ctx = current();
    let seq = ctx.seq;
    ctx.seq += 1;
    CTX.with(|c| c.set(ctx));
    if LOGICAL_CLOCK.load(Ordering::Relaxed) {
        seq
    } else {
        wall_us()
    }
}

/// Consumes one sequence number from the current context and returns a
/// timestamp for a log line (wall µs, or the per-trace logical sequence
/// under the logical clock). Used by [`crate::logline`] so log and flight
/// timestamps share one clock.
#[must_use]
pub fn log_stamp() -> u64 {
    next_stamp()
}

/// Mints a deterministic 63-bit non-zero span id from the trace id and the
/// per-trace sequence at span open.
fn mint_span_id(trace: u64, seq: u64) -> u64 {
    (Rng::new(trace ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64() & ID_MASK) | 1
}

/// Mints deterministic 63-bit non-zero trace ids from a seed. Two
/// generators with the same seed mint the same id sequence.
#[derive(Debug)]
pub struct TraceIdGen {
    seed: u64,
    n: AtomicU64,
}

impl TraceIdGen {
    /// A generator whose id stream is a pure function of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> TraceIdGen {
        TraceIdGen { seed, n: AtomicU64::new(0) }
    }

    /// The next trace id.
    #[must_use]
    pub fn mint(&self) -> u64 {
        let n = self.n.fetch_add(1, Ordering::Relaxed);
        (Rng::new(self.seed ^ n.wrapping_mul(0xD134_2543_DE82_EF95)).next_u64() & ID_MASK) | 1
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A span opened with [`begin`] that has not been closed yet. `Copy` so it
/// can ride a queue to another thread; close it with [`OpenSpan::end`]
/// after [`resume`]-ing the context there.
#[derive(Clone, Copy, Debug)]
pub struct OpenSpan {
    trace: u64,
    span: u64,
    parent: u64,
    kind: FlightKind,
}

impl OpenSpan {
    /// The span's id (what child spans see as their parent).
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.span
    }

    /// Records the span-end event and restores the parent as the current
    /// span on this thread.
    pub fn end(self, arg: u64) {
        let ts = next_stamp();
        global().record_raw(&FlightRecord {
            ts,
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            kind: self.kind,
            ev: EvKind::End,
            arg: arg & ID_MASK,
        });
        let mut ctx = current();
        if ctx.span == self.span {
            ctx.span = self.parent;
            CTX.with(|c| c.set(ctx));
        }
    }
}

/// Opens a span under the current trace context: records a begin event and
/// makes the new span the current one.
pub fn begin(kind: FlightKind, arg: u64) -> OpenSpan {
    let ctx = current();
    let ts = next_stamp(); // consumes ctx.seq; re-read below
    let after = current();
    let span = mint_span_id(ctx.trace, after.seq);
    global().record_raw(&FlightRecord {
        ts,
        trace: ctx.trace,
        span,
        parent: ctx.span,
        kind,
        ev: EvKind::Begin,
        arg: arg & ID_MASK,
    });
    CTX.with(|c| c.set(TraceCtx { span, ..c.get() }));
    OpenSpan { trace: ctx.trace, span, parent: ctx.span, kind }
}

/// Records an instantaneous point event at the current context.
pub fn point(kind: FlightKind, arg: u64) {
    let ctx = current();
    let ts = next_stamp();
    global().record_raw(&FlightRecord {
        ts,
        trace: ctx.trace,
        span: ctx.span,
        parent: 0,
        kind,
        ev: EvKind::Point,
        arg: arg & ID_MASK,
    });
}

/// RAII span guard: begin on construction, end on drop.
#[derive(Debug)]
pub struct SpanScope {
    open: Option<OpenSpan>,
    root: Option<CtxGuard>,
}

impl SpanScope {
    /// Opens a child span of whatever trace is current on this thread
    /// (possibly trace 0 — events outside a request still get recorded).
    #[must_use]
    pub fn enter(kind: FlightKind, arg: u64) -> SpanScope {
        SpanScope { open: Some(begin(kind, arg)), root: None }
    }

    /// Installs a fresh context for `trace` and opens its root span; drop
    /// order closes the span before restoring the previous context.
    #[must_use]
    pub fn root(trace: u64, kind: FlightKind, arg: u64) -> SpanScope {
        let guard = resume(TraceCtx::fresh(trace));
        SpanScope { open: Some(begin(kind, arg)), root: Some(guard) }
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            open.end(0);
        }
        self.root.take(); // restores the previous context after the end event
    }
}

// ---------------------------------------------------------------------------
// Parsing and rendering
// ---------------------------------------------------------------------------

/// Parses a flight JSONL dump back into records.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn parse_flight(log: &str) -> Result<Vec<FlightRecord>, String> {
    let mut out = Vec::new();
    for (no, line) in log.lines().enumerate() {
        out.push(parse_flight_line(line).map_err(|m| format!("line {}: {m}", no + 1))?);
    }
    Ok(out)
}

fn parse_flight_line(line: &str) -> Result<FlightRecord, String> {
    const KEYS: [&str; 7] = ["trace", "ts", "event", "kind", "span", "parent", "arg"];
    let fields = crate::validate::parse_flat_fields(line)?;
    if fields.len() != KEYS.len() {
        return Err(format!("expected {} fields, found {}", KEYS.len(), fields.len()));
    }
    let mut ints = [0u64; 7];
    let mut ev = None;
    let mut kind = None;
    for (i, ((key, val), want)) in fields.iter().zip(KEYS).enumerate() {
        if key != want {
            return Err(format!("field {} must be `{want}`, found `{key}`", i + 1));
        }
        match (want, val) {
            ("event", crate::validate::FlatVal::Str(s)) => {
                ev =
                    EV_NAMES.iter().position(|n| n == s).and_then(|p| EvKind::from_index(p as u64));
                if ev.is_none() {
                    return Err(format!("unknown event `{s}`"));
                }
            }
            ("kind", crate::validate::FlatVal::Str(s)) => {
                kind = FLIGHT_KIND_NAMES
                    .iter()
                    .position(|n| n == s)
                    .and_then(|p| FlightKind::from_index(p as u64));
                if kind.is_none() {
                    return Err(format!("unknown kind `{s}`"));
                }
            }
            ("event" | "kind", crate::validate::FlatVal::Int(_)) => {
                return Err(format!("`{want}` must be a string"));
            }
            (_, crate::validate::FlatVal::Int(v)) if *v >= 0 => {
                ints[i] = u64::try_from(*v).unwrap_or(0);
            }
            _ => return Err(format!("`{want}` must be a non-negative integer")),
        }
    }
    Ok(FlightRecord {
        trace: ints[0],
        ts: ints[1],
        ev: ev.expect("checked above"),
        kind: kind.expect("checked above"),
        span: ints[4],
        parent: ints[5],
        arg: ints[6],
    })
}

/// Validates a flight JSONL dump: schema per line, traces grouped in
/// non-decreasing order, timestamps non-decreasing within a trace.
///
/// Returns the number of records on success.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_flight(log: &str) -> Result<usize, String> {
    let records = parse_flight(log)?;
    let mut last: Option<(u64, u64)> = None;
    for (no, rec) in records.iter().enumerate() {
        if let Some((trace, ts)) = last {
            if rec.trace < trace {
                return Err(format!("line {}: trace {} goes backwards", no + 1, rec.trace));
            }
            if rec.trace == trace && rec.ts < ts {
                return Err(format!(
                    "line {}: ts {} goes backwards within trace {}",
                    no + 1,
                    rec.ts,
                    rec.trace
                ));
            }
        }
        last = Some((rec.trace, rec.ts));
    }
    Ok(records.len())
}

/// Renders a flight dump as one indented tree per trace, with integer-µs
/// (or logical-tick) timings. `resolve_arg` may pretty-print a kind's
/// argument (the CLI maps fault-site indices to names this way); return
/// `None` to fall back to `arg=N`.
///
/// # Errors
///
/// Returns a parse error message for malformed dumps.
pub fn render_flight(
    log: &str,
    resolve_arg: &dyn Fn(FlightKind, u64) -> Option<String>,
) -> Result<String, String> {
    let records = parse_flight(log)?;
    let mut out = String::new();
    let mut i = 0usize;
    while i < records.len() {
        let trace = records[i].trace;
        let mut j = i;
        while j < records.len() && records[j].trace == trace {
            j += 1;
        }
        let group = &records[i..j];
        let faults = group.iter().filter(|r| r.kind == FlightKind::Fault).count();
        out.push_str(&format!("trace {trace:016x}  events={}  faults={faults}\n", group.len()));
        render_trace(group, &mut out, resolve_arg);
        i = j;
    }
    Ok(out)
}

fn render_trace(
    group: &[FlightRecord],
    out: &mut String,
    resolve_arg: &dyn Fn(FlightKind, u64) -> Option<String>,
) {
    // Depth of a span = 1 + depth of its parent; roots (parent 0 or an
    // unknown parent) sit at depth 1 under the trace header.
    let depth_of = |span: u64| -> usize {
        let mut depth = 1usize;
        let mut cur = span;
        // Bounded walk so a corrupt dump cannot loop forever.
        for _ in 0..group.len() {
            let Some(parent) = group
                .iter()
                .find(|r| r.ev == EvKind::Begin && r.span == cur)
                .map(|r| r.parent)
                .filter(|&p| p != 0)
            else {
                break;
            };
            depth += 1;
            cur = parent;
        }
        depth
    };
    for rec in group {
        match rec.ev {
            EvKind::Begin => {
                let end =
                    group.iter().find(|r| r.ev == EvKind::End && r.span == rec.span).map(|r| r.ts);
                let arg =
                    resolve_arg(rec.kind, rec.arg).unwrap_or_else(|| format!("arg={}", rec.arg));
                let indent = "  ".repeat(depth_of(rec.span));
                match end {
                    Some(end) => out.push_str(&format!(
                        "{indent}{} {}..{} ({}us) {arg}\n",
                        rec.kind.name(),
                        rec.ts,
                        end,
                        end.saturating_sub(rec.ts)
                    )),
                    None => out.push_str(&format!(
                        "{indent}{} {}.. (open) {arg}\n",
                        rec.kind.name(),
                        rec.ts
                    )),
                }
            }
            EvKind::End => {}
            EvKind::Point => {
                let arg =
                    resolve_arg(rec.kind, rec.arg).unwrap_or_else(|| format!("arg={}", rec.arg));
                let depth = if rec.span == 0 { 1 } else { depth_of(rec.span) + 1 };
                let indent = "  ".repeat(depth);
                out.push_str(&format!("{indent}! {} @{} {arg}\n", rec.kind.name(), rec.ts));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder and thread-local context are process state;
    // serialize the tests that touch them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn trace_ids_are_seed_deterministic_and_nonzero() {
        let a = TraceIdGen::new(42);
        let b = TraceIdGen::new(42);
        let ids: Vec<u64> = (0..16).map(|_| a.mint()).collect();
        for id in &ids {
            assert_eq!(b.mint(), *id);
            assert_ne!(*id, 0);
            assert!(*id <= ID_MASK);
        }
        let other = TraceIdGen::new(43).mint();
        assert_ne!(other, ids[0], "different seeds, different streams");
    }

    #[test]
    fn span_scopes_nest_and_round_trip_through_the_dump() {
        let _g = lock();
        let _clock = logical_clock_guard();
        global().reset();
        {
            let _root = SpanScope::root(77, FlightKind::Request, 5);
            {
                let _child = SpanScope::enter(FlightKind::StoreGet, 9);
                point(FlightKind::Fault, 3);
            }
        }
        let dump = global().dump();
        assert_eq!(validate_flight(&dump), Ok(5));
        let recs = parse_flight(&dump).unwrap();
        assert!(recs.iter().all(|r| r.trace == 77));
        let child = recs.iter().find(|r| r.kind == FlightKind::StoreGet).unwrap();
        let root = recs.iter().find(|r| r.kind == FlightKind::Request).unwrap();
        assert_eq!(child.parent, root.span, "child nests under the root span");
        let fault = recs.iter().find(|r| r.kind == FlightKind::Fault).unwrap();
        assert_eq!(fault.span, child.span, "the fault is attributed to the open span");
        let tree = render_flight(&dump, &|_, _| None).unwrap();
        assert!(tree.contains("request"), "{tree}");
        assert!(tree.contains("! fault"), "{tree}");
    }

    #[test]
    fn context_hand_off_between_threads_preserves_the_trace() {
        let _g = lock();
        let _clock = logical_clock_guard();
        global().reset();
        let open;
        let ctx;
        {
            let _install = resume(TraceCtx::fresh(123));
            open = begin(FlightKind::QueueWait, 0);
            ctx = current();
        }
        std::thread::spawn(move || {
            let _install = resume(ctx);
            open.end(0);
        })
        .join()
        .unwrap();
        let recs = global().snapshot();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.trace == 123));
        assert_eq!(recs[0].ev, EvKind::Begin);
        assert_eq!(recs[1].ev, EvKind::End);
        assert!(recs[1].ts > recs[0].ts, "logical stamps keep ordering across the hand-off");
    }

    #[test]
    fn validator_rejects_bad_dumps() {
        assert!(validate_flight("not json").is_err());
        assert!(
            validate_flight(
                "{\"trace\":1,\"ts\":0,\"event\":\"nope\",\"kind\":\"request\",\"span\":1,\"parent\":0,\"arg\":0}"
            )
            .is_err(),
            "unknown event"
        );
        assert!(
            validate_flight(
                "{\"trace\":1,\"ts\":0,\"event\":\"point\",\"kind\":\"mark\",\"span\":0,\"parent\":0,\"arg\":0}\n\
                 {\"trace\":1,\"ts\":5,\"event\":\"point\",\"kind\":\"mark\",\"span\":0,\"parent\":0,\"arg\":0}\n"
            )
            .is_ok()
        );
        assert!(
            validate_flight(
                "{\"trace\":1,\"ts\":5,\"event\":\"point\",\"kind\":\"mark\",\"span\":0,\"parent\":0,\"arg\":0}\n\
                 {\"trace\":1,\"ts\":0,\"event\":\"point\",\"kind\":\"mark\",\"span\":0,\"parent\":0,\"arg\":0}\n"
            )
            .is_err(),
            "ts regression within a trace"
        );
    }
}
