//! A minimal phase-attribution wall-clock timer.
//!
//! [`PhaseTimer`] is the host-time counterpart to [`crate::Probe`]: a
//! hot loop owns one (usually behind an `Option` so the disabled path is
//! a single branch), calls [`PhaseTimer::start`] at the top of each
//! iteration and [`PhaseTimer::lap`] after each phase, and reads the
//! accumulated per-phase nanoseconds when the run ends. Phase indices
//! are defined by the owner; the timer is just `N` buckets and a mark.

use std::time::Instant;

/// Accumulates wall-clock nanoseconds into `N` phase buckets.
#[derive(Debug, Clone)]
pub struct PhaseTimer<const N: usize> {
    /// Nanoseconds attributed to each phase so far.
    pub wall_ns: [u64; N],
    mark: Option<Instant>,
}

impl<const N: usize> Default for PhaseTimer<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> PhaseTimer<N> {
    /// A fresh timer with all buckets at zero and no mark.
    #[must_use]
    pub fn new() -> Self {
        Self { wall_ns: [0; N], mark: None }
    }

    /// Sets the mark the next [`PhaseTimer::lap`] measures from.
    pub fn start(&mut self) {
        self.mark = Some(Instant::now());
    }

    /// Attributes the time since the last mark to `phase` and re-marks.
    /// Without a prior mark (or after [`PhaseTimer::pause`]) this only
    /// re-marks, attributing nothing.
    pub fn lap(&mut self, phase: usize) {
        let now = Instant::now();
        if let Some(t0) = self.mark {
            self.wall_ns[phase] =
                self.wall_ns[phase].saturating_add(duration_ns(now.duration_since(t0)));
        }
        self.mark = Some(now);
    }

    /// Clears the mark so time until the next [`PhaseTimer::start`] is
    /// attributed to no phase.
    pub fn pause(&mut self) {
        self.mark = None;
    }

    /// Total nanoseconds attributed across all phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.wall_ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_attribute_to_the_named_phase() {
        let mut t: PhaseTimer<3> = PhaseTimer::new();
        t.start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.lap(1);
        t.lap(2); // immediate: tiny but attributed
        assert!(t.wall_ns[0] == 0, "phase 0 never lapped");
        assert!(t.wall_ns[1] >= 1_000_000, "sleep shows up in phase 1");
        assert_eq!(t.total_ns(), t.wall_ns.iter().sum::<u64>());
    }

    #[test]
    fn lap_without_mark_attributes_nothing() {
        let mut t: PhaseTimer<2> = PhaseTimer::new();
        t.lap(0);
        assert_eq!(t.wall_ns, [t.wall_ns[0], 0]);
        t.pause();
        t.lap(1);
        // The pause cleared the mark set by the first lap, so phase 1
        // got nothing even though time passed.
        assert_eq!(t.wall_ns[1], 0);
    }
}
