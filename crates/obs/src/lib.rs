//! # tdo-obs — the cycle-stamped observability layer
//!
//! The paper's central claim is *dynamic*: prefetch distances start wrong
//! and are repaired in place until delinquent-load events stop firing. The
//! end-of-run aggregates (`SimResult`, `TridentStats`, `OptimizerStats`)
//! cannot show that convergence, so this crate records *when* things happen:
//! every event is stamped with the simulated cycle at which it occurred —
//! never wall clock — so recorded timelines are byte-identical across runs,
//! worker counts and machines.
//!
//! The design is pay-for-what-you-use:
//!
//! * [`Probe`] — the recording interface the simulation layers call into.
//!   Call sites guard on [`Probe::enabled`], so with the default
//!   [`NullProbe`] no [`Event`] value is ever constructed: the hot path
//!   does one boolean test and moves on.
//! * [`NullProbe`] — the zero-sized, always-disabled probe.
//! * [`Recorder`] — an enabled probe that appends `(cycle, event)` pairs to
//!   a vector and serializes them as a JSONL event log
//!   ([`Recorder::to_jsonl`]) or a Chrome `trace_event` file
//!   ([`Recorder::to_chrome_trace`]) viewable in `about:tracing`/Perfetto.
//! * [`validate`] — a schema check for emitted JSONL logs (used by tests
//!   and CI via `tdo trace-validate`).
//!
//! Layers share one probe through [`SharedProbe`]
//! (`Rc<RefCell<dyn Probe>>`): the driver, the Trident runtime and the
//! prefetch optimizer all hold clones of the same recorder, and the whole
//! machine stays single-threaded per simulation (parallelism in the
//! experiment engine is *across* cells, never within one).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod event;
pub mod logline;
pub mod profile;
pub mod recorder;
pub mod span;
pub mod validate;

use std::cell::RefCell;
use std::rc::Rc;

pub use event::{
    DropReason, Event, HelperJobKind, LoadClassKind, PrefetchGroupKind, QueueEventKind,
};
pub use logline::{validate_log, Level};
pub use profile::PhaseTimer;
pub use recorder::Recorder;
pub use span::{
    render_flight, validate_flight, FlightKind, FlightRecorder, SpanScope, TraceCtx, TraceIdGen,
};
pub use validate::{validate_chrome_trace, validate_jsonl};

/// Registers the crate's process-global observability counters — the
/// flight recorder's recorded/overwritten/dropped counts and the per-level
/// structured-log line counts — with a metrics registry.
pub fn register_metrics(reg: &tdo_metrics::Registry) {
    span::global().register_metrics(reg);
    logline::register_metrics(reg);
}

/// The recording interface the simulation layers call into.
///
/// Contract for call sites: construct the [`Event`] (and call [`Probe::record`])
/// only when [`Probe::enabled`] returns `true`. That keeps the disabled path
/// free of event construction — a single boolean test.
pub trait Probe {
    /// Whether this probe records anything. Call sites skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool;

    /// Records one event at the given simulated cycle.
    fn record(&mut self, cycle: u64, event: Event);
}

/// The zero-sized, always-disabled probe — the default in every layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _cycle: u64, _event: Event) {}
}

/// A probe shared between the driver, the Trident runtime and the prefetch
/// optimizer of one machine.
pub type SharedProbe = Rc<RefCell<dyn Probe>>;

/// A fresh disabled probe (what every layer starts with).
#[must_use]
pub fn null_probe() -> SharedProbe {
    Rc::new(RefCell::new(NullProbe))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
        assert!(!NullProbe.enabled());
        // Recording through it is a no-op (nothing to observe, nothing to
        // panic): the call compiles away once `enabled()` gates it.
        NullProbe.record(7, Event::HelperFinish { job: 0 });
    }

    #[test]
    fn shared_null_probe_reports_disabled() {
        let p = null_probe();
        assert!(!p.borrow().enabled());
    }
}
