//! The recording probe and its two export formats.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::event::{Event, HelperJobKind};
use crate::Probe;

/// An enabled probe that appends `(cycle, event)` pairs in arrival order.
///
/// Arrival order is the machine's deterministic execution order, so the
/// serialized forms are byte-identical for identical simulations no matter
/// how many engine workers run *other* cells concurrently.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    events: Vec<(u64, Event)>,
}

impl Probe for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, cycle: u64, event: Event) {
        self.events.push((cycle, event));
    }
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// A fresh recorder behind the shared-probe handle, plus the concrete
    /// handle the caller keeps to read the events back after the run.
    #[must_use]
    pub fn shared() -> Rc<RefCell<Recorder>> {
        Rc::new(RefCell::new(Recorder::new()))
    }

    /// The recorded `(cycle, event)` pairs in arrival order.
    #[must_use]
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the log as JSON lines, one flat object per event.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 80);
        for (cycle, ev) in &self.events {
            ev.write_jsonl(*cycle, &mut out);
        }
        out
    }

    /// Serializes the log in Chrome `trace_event` format (JSON object with a
    /// `traceEvents` array), loadable in `about:tracing` or Perfetto.
    ///
    /// Timestamps (`ts`) are simulated cycles, not microseconds; helper jobs
    /// render as duration spans on their own track, windowed samples as
    /// counter series, and everything else as instant events.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 120 + 512);
        out.push_str("{\"traceEvents\":[\n");
        // Track metadata: tid 0 = driver instants, tid 1 = helper spans.
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"tdo-sim\"}},\n\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"driver\"}},\n\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
             \"args\":{\"name\":\"helper\"}}",
        );
        // Open helper spans by job id, for naming the matching span end.
        let mut open: HashMap<u64, HelperJobKind> = HashMap::new();
        for (cycle, ev) in &self.events {
            let ts = *cycle;
            match *ev {
                Event::HelperStart { job, kind, cost } => {
                    open.insert(job, kind);
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"{}\",\"cat\":\"helper\",\"ph\":\"B\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":1,\"args\":{{\"job\":{job},\"cost\":{cost}}}}}",
                        kind.name()
                    );
                }
                Event::HelperFinish { job } => {
                    let kind = open.remove(&job).unwrap_or(HelperJobKind::AnalyzeOnly);
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"{}\",\"cat\":\"helper\",\"ph\":\"E\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":1}}",
                        kind.name()
                    );
                }
                Event::Sample { ipc_milli, l1_miss_milli, l2_miss_milli, pf_acc_milli, .. } => {
                    for (name, v) in [
                        ("ipc_milli", ipc_milli),
                        ("l1_miss_milli", l1_miss_milli),
                        ("l2_miss_milli", l2_miss_milli),
                        ("pf_acc_milli", pf_acc_milli),
                    ] {
                        let _ = write!(
                            out,
                            ",\n{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                             \"tid\":0,\"args\":{{\"value\":{v}}}}}"
                        );
                    }
                }
                Event::EventQueued { pending, .. } | Event::EventDrained { pending, .. } => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"event_queue_depth\",\"ph\":\"C\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":0,\"args\":{{\"value\":{pending}}}}}"
                    );
                    self.instant(&mut out, ts, ev);
                }
                _ => self.instant(&mut out, ts, ev),
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes one instant event carrying the full JSONL fields as args.
    fn instant(&self, out: &mut String, ts: u64, ev: &Event) {
        // Reuse the JSONL serialization for the args object: strip the
        // line's outer braces and its trailing newline.
        let mut line = String::new();
        ev.write_jsonl(ts, &mut line);
        let inner = &line[1..line.len() - 2];
        let _ = write!(
            out,
            ",\n{{\"name\":\"{}\",\"cat\":\"opt\",\"ph\":\"i\",\"ts\":{ts},\"pid\":1,\
             \"tid\":0,\"s\":\"t\",\"args\":{{{inner}}}}}",
            ev.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueueEventKind;

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new();
        r.record(10, Event::EventQueued { kind: QueueEventKind::HotTrace, pc: 64, pending: 1 });
        r.record(20, Event::HelperStart { job: 0, kind: HelperJobKind::FormTrace, cost: 700 });
        r.record(95, Event::HelperFinish { job: 0 });
        r.record(
            100,
            Event::Sample {
                insts: 1000,
                dcycles: 90,
                ipc_milli: 11111,
                l1_miss_milli: 50,
                l2_miss_milli: 10,
                pf_acc_milli: 0,
            },
        );
        r
    }

    #[test]
    fn jsonl_round_trips_every_event() {
        let r = sample_recorder();
        let log = r.to_jsonl();
        assert_eq!(log.lines().count(), 4);
        assert!(log.starts_with("{\"cycle\":10,\"event\":\"event_queued\""));
        assert!(log.ends_with("}\n"));
    }

    #[test]
    fn chrome_trace_pairs_helper_spans_by_name() {
        let trace = sample_recorder().to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":[\n"));
        assert!(trace.ends_with("]}\n"));
        let begins = trace.matches("\"ph\":\"B\"").count();
        let ends = trace.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
        assert_eq!(trace.matches("\"name\":\"form_trace\"").count(), 2);
        // Four counter series per sample, one per queue transition.
        assert_eq!(trace.matches("\"ph\":\"C\"").count(), 5);
    }

    #[test]
    fn recording_is_in_arrival_order() {
        let r = sample_recorder();
        let cycles: Vec<u64> = r.events().iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, [10, 20, 95, 100]);
    }
}
