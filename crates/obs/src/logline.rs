//! A tiny structured log plane: `key=value` lines on stderr.
//!
//! Every line has the same machine-parseable shape,
//!
//! ```text
//! ts=1234 level=warn component=engine trace=00000000000004d2 msg="cannot persist" err="..."
//! ```
//!
//! where `ts` comes from the flight clock (wall µs, or the per-trace
//! logical sequence under [`crate::span::logical_clock_guard`] — which is
//! what makes log output deterministic in tests), `trace` is the current
//! trace context rendered as 16 hex digits (all zeros outside a request),
//! `msg` and every extra field value are quoted strings with `\"` and `\\`
//! escapes and no raw newlines.
//!
//! [`validate_log`] is the schema lint CI runs over captured log output;
//! [`capture`] redirects a thread's lines into a string so tests and the
//! chaos harness can assert on (and archive) exactly what was logged.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

use tdo_metrics::{Counter, Registry};

/// Log severity. Rendered lowercase in the `level=` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Developer chatter.
    Debug = 0,
    /// Normal operational events.
    Info = 1,
    /// Something degraded but handled.
    Warn = 2,
    /// Something failed.
    Error = 3,
}

/// Level names, indexed by discriminant.
pub const LEVEL_NAMES: [&str; 4] = ["debug", "info", "warn", "error"];

impl Level {
    /// The lowercase name of this level.
    #[must_use]
    pub fn name(self) -> &'static str {
        LEVEL_NAMES[self as usize]
    }
}

fn line_counters() -> &'static [Arc<Counter>; 4] {
    static COUNTERS: OnceLock<[Arc<Counter>; 4]> = OnceLock::new();
    COUNTERS.get_or_init(|| std::array::from_fn(|_| Arc::new(Counter::new())))
}

/// Registers the per-level `tdo_obs_log_lines_total{level}` counters.
pub fn register_metrics(reg: &Registry) {
    for (i, c) in line_counters().iter().enumerate() {
        reg.register_counter(
            "tdo_obs_log_lines_total",
            &[("level", LEVEL_NAMES[i])],
            "Structured log lines emitted.",
            Arc::clone(c),
        );
    }
}

thread_local! {
    static SINK: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn quote(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' | '\r' => out.push(' '),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `true` if `k` is a valid field key: `[a-z_][a-z0-9_]*`.
fn valid_key(k: &str) -> bool {
    tdo_metrics::valid_name(k)
}

/// Formats one structured log line (no trailing newline). Pure function of
/// its inputs plus the current trace context and flight clock.
#[must_use]
pub fn format_line(level: Level, component: &str, msg: &str, fields: &[(&str, &str)]) -> String {
    let ctx = crate::span::current();
    let ts = crate::span::log_stamp();
    let mut out = format!(
        "ts={ts} level={} component={component} trace={:016x} msg={}",
        level.name(),
        ctx.trace,
        quote(msg)
    );
    for (k, v) in fields {
        debug_assert!(valid_key(k), "bad log field key: {k}");
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(&quote(v));
    }
    out
}

/// Emits one structured log line to stderr (or the thread's capture sink).
pub fn log(level: Level, component: &str, msg: &str, fields: &[(&str, &str)]) {
    debug_assert!(valid_key(component), "bad log component: {component}");
    let line = format_line(level, component, msg, fields);
    line_counters()[level as usize].inc();
    let captured = SINK.with(|s| {
        let mut sink = s.borrow_mut();
        if let Some(buf) = sink.as_mut() {
            buf.push_str(&line);
            buf.push('\n');
            true
        } else {
            false
        }
    });
    if !captured {
        eprintln!("{line}");
    }
}

/// Runs `f` with this thread's log lines redirected into a string; returns
/// the closure's result and everything logged while it ran.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, String) {
    let prev = SINK.with(|s| s.borrow_mut().replace(String::new()));
    let out = f();
    let log = SINK.with(|s| {
        let mut sink = s.borrow_mut();
        let captured = sink.take().unwrap_or_default();
        *sink = prev;
        captured
    });
    (out, log)
}

/// Validates structured log output: every line must match the schema.
///
/// Returns the number of lines on success.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_log(log: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (no, line) in log.lines().enumerate() {
        validate_line(line).map_err(|m| format!("line {}: {m}", no + 1))?;
        count += 1;
    }
    Ok(count)
}

fn validate_line(line: &str) -> Result<(), String> {
    let fields = split_fields(line)?;
    let expect_key = |i: usize, want: &str| -> Result<&str, String> {
        match fields.get(i) {
            Some((k, v)) if k == want => Ok(v),
            Some((k, _)) => Err(format!("field {} must be `{want}`, found `{k}`", i + 1)),
            None => Err(format!("missing `{want}` field")),
        }
    };
    let ts = expect_key(0, "ts")?;
    if ts.is_empty() || !ts.chars().all(|c| c.is_ascii_digit()) {
        return Err(format!("ts must be a non-negative integer, found `{ts}`"));
    }
    let level = expect_key(1, "level")?;
    if !LEVEL_NAMES.contains(&level) {
        return Err(format!("unknown level `{level}`"));
    }
    let component = expect_key(2, "component")?;
    if !valid_key(component) {
        return Err(format!("bad component `{component}`"));
    }
    let trace = expect_key(3, "trace")?;
    if trace.len() != 16 || !trace.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("trace must be 16 hex digits, found `{trace}`"));
    }
    expect_key(4, "msg")?;
    for (k, _) in fields.iter().skip(4) {
        if !valid_key(k) {
            return Err(format!("bad field key `{k}`"));
        }
    }
    // msg and extras must have been quoted — split_fields already rejected
    // unquoted values containing spaces and unterminated quotes.
    Ok(())
}

/// Splits `k=v k2="v 2"` into pairs, unescaping quoted values.
fn split_fields(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let start = i;
        while i < chars.len() && chars[i] != '=' {
            if chars[i] == ' ' || chars[i] == '"' {
                return Err(format!("expected `key=` at column {}", start + 1));
            }
            i += 1;
        }
        if i == chars.len() || i == start {
            return Err(format!("expected `key=` at column {}", start + 1));
        }
        let key: String = chars[start..i].iter().collect();
        i += 1; // '='
        let mut val = String::new();
        if chars.get(i) == Some(&'"') {
            i += 1;
            let mut closed = false;
            while i < chars.len() {
                match chars[i] {
                    '\\' => {
                        let esc = chars.get(i + 1);
                        if esc != Some(&'"') && esc != Some(&'\\') {
                            return Err(format!("bad escape at column {}", i + 1));
                        }
                        val.push(*esc.expect("checked above"));
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        closed = true;
                        break;
                    }
                    c => {
                        val.push(c);
                        i += 1;
                    }
                }
            }
            if !closed {
                return Err("unterminated quoted value".into());
            }
        } else {
            while i < chars.len() && chars[i] != ' ' {
                if chars[i] == '"' {
                    return Err(format!("unexpected `\"` at column {}", i + 1));
                }
                val.push(chars[i]);
                i += 1;
            }
        }
        out.push((key, val));
        if i < chars.len() {
            if chars[i] != ' ' {
                return Err(format!("expected space at column {}", i + 1));
            }
            i += 1;
            if i == chars.len() {
                return Err("trailing space".into());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_machine_parseable_and_validate() {
        let line = format_line(
            Level::Warn,
            "engine",
            "cannot persist \"cell\"",
            &[("err", "disk\\full"), ("key", "mcf|Quick")],
        );
        assert!(line.starts_with("ts="), "{line}");
        assert!(line.contains("level=warn component=engine trace=0000000000000000"), "{line}");
        assert_eq!(validate_log(&line), Ok(1));
        let fields = split_fields(&line).unwrap();
        assert_eq!(fields[4], ("msg".into(), "cannot persist \"cell\"".into()));
        assert_eq!(fields[5], ("err".into(), "disk\\full".into()));
    }

    #[test]
    fn capture_redirects_and_restores() {
        let ((), captured) = capture(|| {
            log(Level::Info, "store", "opened", &[("slots", "9")]);
            log(Level::Error, "store", "gone", &[]);
        });
        assert_eq!(captured.lines().count(), 2);
        assert_eq!(validate_log(&captured), Ok(2));
        assert!(captured.contains("msg=\"opened\" slots=\"9\""), "{captured}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_log("not a log line").is_err());
        assert!(
            validate_log("ts=x level=info component=a trace=0000000000000000 msg=\"m\"").is_err()
        );
        assert!(
            validate_log("ts=1 level=loud component=a trace=0000000000000000 msg=\"m\"").is_err()
        );
        assert!(validate_log("ts=1 level=info component=a trace=xyz msg=\"m\"").is_err());
        assert!(
            validate_log("ts=1 level=info component=a trace=0000000000000000 msg=\"open").is_err(),
            "unterminated quote"
        );
        assert!(
            validate_log("ts=1 component=a level=info trace=0000000000000000 msg=\"m\"").is_err(),
            "field order"
        );
    }
}
