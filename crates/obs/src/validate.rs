//! Schema validation for emitted logs — used by tests and by CI through
//! `tdo trace-validate`.
//!
//! The JSONL validator is a tiny hand-rolled parser for exactly what the
//! serializer produces: one flat object per line, string keys, integer or
//! string values. It checks the schema, not just well-formedness:
//!
//! * `"cycle"` is the first key and an integer, non-decreasing across lines;
//! * `"event"` is the second key and one of [`crate::event::EVENT_NAMES`];
//! * every other value is an integer or a plain string.

use crate::event::EVENT_NAMES;

/// One parsed value in a flat JSONL object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum FlatVal {
    Int(i64),
    Str(String),
}

/// Parses one flat JSON object line into `(key, value)` pairs.
pub(crate) fn parse_flat_fields(line: &str) -> Result<Vec<(String, FlatVal)>, String> {
    let s: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    let expect = |i: &mut usize, c: char| -> Result<(), String> {
        if s.get(*i) == Some(&c) {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at column {}", *i + 1))
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if s.get(*i) != Some(&'"') {
            return Err(format!("expected string at column {}", *i + 1));
        }
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = s.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => return Err("escapes are not part of the schema".into()),
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    };
    let parse_int = |i: &mut usize| -> Result<i64, String> {
        let start = *i;
        if s.get(*i) == Some(&'-') {
            *i += 1;
        }
        while s.get(*i).is_some_and(char::is_ascii_digit) {
            *i += 1;
        }
        let text: String = s[start..*i].iter().collect();
        text.parse().map_err(|_| format!("expected integer at column {}", start + 1))
    };

    let mut fields = Vec::new();
    expect(&mut i, '{')?;
    loop {
        let key = parse_string(&mut i)?;
        expect(&mut i, ':')?;
        let val = if s.get(i) == Some(&'"') {
            FlatVal::Str(parse_string(&mut i)?)
        } else {
            FlatVal::Int(parse_int(&mut i)?)
        };
        fields.push((key, val));
        match s.get(i) {
            Some(',') => i += 1,
            Some('}') => {
                i += 1;
                break;
            }
            _ => return Err(format!("expected `,` or `}}` at column {}", i + 1)),
        }
    }
    if i != s.len() {
        return Err(format!("trailing content at column {}", i + 1));
    }
    Ok(fields)
}

/// Validates a JSONL event log against the schema.
///
/// Returns the number of events on success.
///
/// # Errors
///
/// Returns a message naming the first offending line and what is wrong with
/// it.
pub fn validate_jsonl(log: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_cycle = 0i64;
    for (no, line) in log.lines().enumerate() {
        let at = |m: String| format!("line {}: {m}", no + 1);
        let fields = parse_flat_fields(line).map_err(&at)?;
        match fields.first() {
            Some((k, FlatVal::Int(cycle))) if k == "cycle" => {
                if *cycle < last_cycle {
                    return Err(at(format!(
                        "cycle {cycle} goes backwards (previous {last_cycle})"
                    )));
                }
                last_cycle = *cycle;
            }
            _ => return Err(at("first field must be an integer `cycle`".into())),
        }
        match fields.get(1) {
            Some((k, FlatVal::Str(name))) if k == "event" => {
                if !EVENT_NAMES.contains(&name.as_str()) {
                    return Err(at(format!("unknown event `{name}`")));
                }
            }
            _ => return Err(at("second field must be a string `event`".into())),
        }
        count += 1;
    }
    Ok(count)
}

/// Structurally validates a Chrome `trace_event` file: balanced braces,
/// brackets and strings, with a top-level `traceEvents` array.
///
/// Returns the number of trace entries (phase markers) on success.
///
/// # Errors
///
/// Returns a message describing the structural problem.
pub fn validate_chrome_trace(trace: &str) -> Result<usize, String> {
    if !trace.starts_with("{\"traceEvents\":[") {
        return Err("missing top-level traceEvents array".into());
    }
    let mut stack = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in trace.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => stack.push(c),
            '}' if stack.pop() != Some('{') => return Err("unbalanced `}`".into()),
            ']' if stack.pop() != Some('[') => return Err("unbalanced `]`".into()),
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string".into());
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed delimiters", stack.len()));
    }
    Ok(trace.matches("\"ph\":").count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_serializer_output() {
        let log = "{\"cycle\":1,\"event\":\"helper_finish\",\"job\":0}\n\
                   {\"cycle\":5,\"event\":\"load_matured\",\"pc\":4096}\n";
        assert_eq!(validate_jsonl(log), Ok(2));
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(validate_jsonl("{\"event\":\"sample\",\"cycle\":1}").is_err(), "order");
        assert!(validate_jsonl("{\"cycle\":1,\"event\":\"nope\"}").is_err(), "unknown name");
        assert!(
            validate_jsonl(
                "{\"cycle\":9,\"event\":\"helper_finish\",\"job\":0}\n\
                 {\"cycle\":3,\"event\":\"helper_finish\",\"job\":1}\n"
            )
            .is_err(),
            "cycle regression"
        );
        assert!(validate_jsonl("not json").is_err(), "garbage");
        assert!(validate_jsonl("{\"cycle\":1,\"event\":\"sample\"} extra").is_err(), "trailing");
    }

    #[test]
    fn chrome_validator_checks_structure() {
        assert!(validate_chrome_trace("{\"traceEvents\":[\n]}\n").is_ok());
        assert!(validate_chrome_trace("[]").is_err(), "wrong root");
        assert!(validate_chrome_trace("{\"traceEvents\":[{]}").is_err(), "unbalanced");
        let ok = "{\"traceEvents\":[\n{\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\
                  \"tid\":0,\"s\":\"t\",\"args\":{\"a\":1}}\n]}\n";
        assert_eq!(validate_chrome_trace(ok), Ok(1));
    }
}
