//! The event taxonomy and its JSONL serialization.
//!
//! Every event serializes to one flat JSON object per line:
//! `{"cycle":N,"event":"name",...fields}`. All values are integers or
//! fixed strings — floats are pre-scaled to integer milli-units by the
//! producer — so the byte output is trivially deterministic. Field order is
//! fixed by the serializer, never by a map.

use std::fmt::Write as _;

/// Which kind of hot event moved through the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueEventKind {
    /// A hot-trace formation event from the branch profiler.
    HotTrace,
    /// A delinquent-load event from the DLT.
    DelinquentLoad,
}

impl QueueEventKind {
    /// The serialized kind name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueueEventKind::HotTrace => "hot_trace",
            QueueEventKind::DelinquentLoad => "delinquent_load",
        }
    }
}

/// Why the event queue refused an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The queue was at capacity.
    Saturated,
    /// An identical event was already pending (coalesced).
    Duplicate,
}

impl DropReason {
    /// The serialized reason name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Saturated => "saturated",
            DropReason::Duplicate => "duplicate",
        }
    }
}

/// What the helper context is busy doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HelperJobKind {
    /// Forming, optimizing and installing a hot trace.
    FormTrace,
    /// Re-installing a trace with prefetches spliced in.
    InsertPrefetches,
    /// Patching prefetch distance bits in place.
    RepairDistance,
    /// An event whose analysis ended in no code change.
    AnalyzeOnly,
}

impl HelperJobKind {
    /// The span name used in both the JSONL log and the Chrome trace.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HelperJobKind::FormTrace => "form_trace",
            HelperJobKind::InsertPrefetches => "insert_prefetches",
            HelperJobKind::RepairDistance => "repair_distance",
            HelperJobKind::AnalyzeOnly => "analyze_only",
        }
    }
}

/// How the optimizer classified a delinquent load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadClassKind {
    /// Stride-recurrent.
    Stride,
    /// Pointer-chasing.
    Pointer,
    /// Not prefetchable by this optimizer.
    Other,
}

impl LoadClassKind {
    /// The serialized class name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LoadClassKind::Stride => "stride",
            LoadClassKind::Pointer => "pointer",
            LoadClassKind::Other => "other",
        }
    }
}

/// The kind of an inserted prefetch group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchGroupKind {
    /// Stride-predictable; distance-repairable.
    Stride,
    /// Jump-pointer dereference.
    Pointer,
}

impl PrefetchGroupKind {
    /// The serialized kind name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PrefetchGroupKind::Stride => "stride",
            PrefetchGroupKind::Pointer => "pointer",
        }
    }
}

/// One cycle-stamped observation. See each variant for the producing layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Trident formed (and laid out) a new trace body.
    TraceFormed {
        /// Trace id.
        trace: u32,
        /// Original-code head address.
        head: u64,
        /// Body length in instructions.
        insts: u32,
    },
    /// Trident registered a trace and linked its head.
    TraceInstalled {
        /// Trace id.
        trace: u32,
        /// Original-code head address.
        head: u64,
        /// Code-cache address of the body.
        cc_addr: u64,
        /// The trace this one replaced (re-optimization), if any.
        replaces: Option<u32>,
    },
    /// The watch table backed an under-performing trace out.
    TraceBackedOut {
        /// Trace id.
        trace: u32,
        /// Original-code head address (restored).
        head: u64,
    },
    /// A hot event entered the pending queue.
    EventQueued {
        /// Event kind.
        kind: QueueEventKind,
        /// Head address (hot trace) or load PC (delinquent load).
        pc: u64,
        /// Queue depth after the push.
        pending: u32,
    },
    /// A hot event was refused by the queue.
    EventDropped {
        /// Event kind.
        kind: QueueEventKind,
        /// Head address or load PC.
        pc: u64,
        /// Why it was refused.
        reason: DropReason,
    },
    /// The driver dispatched a pending event to the helper context.
    EventDrained {
        /// Event kind.
        kind: QueueEventKind,
        /// Head address or load PC.
        pc: u64,
        /// Queue depth after the pop.
        pending: u32,
    },
    /// The helper context started a job (busy-span open).
    HelperStart {
        /// Job id.
        job: u64,
        /// What the job does.
        kind: HelperJobKind,
        /// Simulated helper instructions charged.
        cost: u64,
    },
    /// A helper job completed and its code changes were committed
    /// (busy-span close).
    HelperFinish {
        /// Job id.
        job: u64,
    },
    /// The optimizer classified a delinquent load.
    LoadClassified {
        /// The load's original PC.
        pc: u64,
        /// The class.
        class: LoadClassKind,
        /// Byte stride (stride class only; 0 otherwise).
        stride: i64,
    },
    /// The optimizer inserted a prefetch group into a trace.
    PrefetchInserted {
        /// Trace id carrying the group (the re-installed trace).
        trace: u32,
        /// Group key: the representative load's original PC.
        group: u64,
        /// Group kind.
        kind: PrefetchGroupKind,
        /// Initial prefetch distance.
        distance: u8,
        /// Number of prefetch instructions inserted.
        prefetches: u32,
    },
    /// The optimizer ran one repair decision for a group.
    DistanceRepaired {
        /// Trace id carrying the group.
        trace: u32,
        /// Group key (representative load original PC).
        group: u64,
        /// Original PC of the triggering load.
        pc: u64,
        /// Distance before the decision.
        old: u8,
        /// Distance after the decision (equal to `old` when held).
        new: u8,
        /// The load's average access latency over the window, ×100.
        avg_latency_x100: u64,
    },
    /// A load matured: its repair budget is spent or it is unprefetchable,
    /// so it stops firing events.
    LoadMatured {
        /// Code-cache PC of the matured load.
        pc: u64,
    },
    /// A windowed performance sample from the driver (every N committed
    /// original instructions). Rates are integer milli-units.
    Sample {
        /// Original-equivalent instructions committed so far (x-axis).
        insts: u64,
        /// Cycles elapsed in this window.
        dcycles: u64,
        /// Window IPC ×1000.
        ipc_milli: u64,
        /// Window L1 load-miss rate ×1000.
        l1_miss_milli: u64,
        /// Window rate of loads serviced beyond the L2 ×1000.
        l2_miss_milli: u64,
        /// Window prefetch accuracy ×1000 (first-touch hits on prefetched
        /// lines per software prefetch issued).
        pf_acc_milli: u64,
    },
    /// The policy controller replaced the hardware prefetcher arm, carrying
    /// the windowed metrics that triggered the decision.
    ArmSwitch {
        /// Arm kind name being retired (`tdo_arms::ArmKind::name`).
        from: &'static str,
        /// Arm kind name being installed.
        to: &'static str,
        /// The triggering epoch's IPC ×1000.
        ipc_milli: u64,
        /// The triggering epoch's L1 load misses per kilo-instruction ×1000.
        mpki_milli: u64,
    },
}

/// Every JSONL event name, in the order the variants are declared (the
/// validator's schema).
pub const EVENT_NAMES: [&str; 14] = [
    "trace_formed",
    "trace_installed",
    "trace_backed_out",
    "event_queued",
    "event_dropped",
    "event_drained",
    "helper_start",
    "helper_finish",
    "load_classified",
    "prefetch_inserted",
    "distance_repaired",
    "load_matured",
    "sample",
    "arm_switch",
];

impl Event {
    /// The event's JSONL name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Event::TraceFormed { .. } => "trace_formed",
            Event::TraceInstalled { .. } => "trace_installed",
            Event::TraceBackedOut { .. } => "trace_backed_out",
            Event::EventQueued { .. } => "event_queued",
            Event::EventDropped { .. } => "event_dropped",
            Event::EventDrained { .. } => "event_drained",
            Event::HelperStart { .. } => "helper_start",
            Event::HelperFinish { .. } => "helper_finish",
            Event::LoadClassified { .. } => "load_classified",
            Event::PrefetchInserted { .. } => "prefetch_inserted",
            Event::DistanceRepaired { .. } => "distance_repaired",
            Event::LoadMatured { .. } => "load_matured",
            Event::Sample { .. } => "sample",
            Event::ArmSwitch { .. } => "arm_switch",
        }
    }

    /// Appends the event as one JSONL line (newline included) to `out`.
    pub fn write_jsonl(&self, cycle: u64, out: &mut String) {
        let _ = write!(out, "{{\"cycle\":{cycle},\"event\":\"{}\"", self.name());
        match *self {
            Event::TraceFormed { trace, head, insts } => {
                let _ = write!(out, ",\"trace\":{trace},\"head\":{head},\"insts\":{insts}");
            }
            Event::TraceInstalled { trace, head, cc_addr, replaces } => {
                let _ = write!(out, ",\"trace\":{trace},\"head\":{head},\"cc_addr\":{cc_addr}");
                if let Some(old) = replaces {
                    let _ = write!(out, ",\"replaces\":{old}");
                }
            }
            Event::TraceBackedOut { trace, head } => {
                let _ = write!(out, ",\"trace\":{trace},\"head\":{head}");
            }
            Event::EventQueued { kind, pc, pending } => {
                let _ =
                    write!(out, ",\"kind\":\"{}\",\"pc\":{pc},\"pending\":{pending}", kind.name());
            }
            Event::EventDropped { kind, pc, reason } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"{}\",\"pc\":{pc},\"reason\":\"{}\"",
                    kind.name(),
                    reason.name()
                );
            }
            Event::EventDrained { kind, pc, pending } => {
                let _ =
                    write!(out, ",\"kind\":\"{}\",\"pc\":{pc},\"pending\":{pending}", kind.name());
            }
            Event::HelperStart { job, kind, cost } => {
                let _ = write!(out, ",\"job\":{job},\"kind\":\"{}\",\"cost\":{cost}", kind.name());
            }
            Event::HelperFinish { job } => {
                let _ = write!(out, ",\"job\":{job}");
            }
            Event::LoadClassified { pc, class, stride } => {
                let _ =
                    write!(out, ",\"pc\":{pc},\"class\":\"{}\",\"stride\":{stride}", class.name());
            }
            Event::PrefetchInserted { trace, group, kind, distance, prefetches } => {
                let _ = write!(
                    out,
                    ",\"trace\":{trace},\"group\":{group},\"kind\":\"{}\",\"distance\":{distance},\"prefetches\":{prefetches}",
                    kind.name()
                );
            }
            Event::DistanceRepaired { trace, group, pc, old, new, avg_latency_x100 } => {
                let _ = write!(
                    out,
                    ",\"trace\":{trace},\"group\":{group},\"pc\":{pc},\"old\":{old},\"new\":{new},\"avg_latency_x100\":{avg_latency_x100}"
                );
            }
            Event::LoadMatured { pc } => {
                let _ = write!(out, ",\"pc\":{pc}");
            }
            Event::Sample {
                insts,
                dcycles,
                ipc_milli,
                l1_miss_milli,
                l2_miss_milli,
                pf_acc_milli,
            } => {
                let _ = write!(
                    out,
                    ",\"insts\":{insts},\"dcycles\":{dcycles},\"ipc_milli\":{ipc_milli},\"l1_miss_milli\":{l1_miss_milli},\"l2_miss_milli\":{l2_miss_milli},\"pf_acc_milli\":{pf_acc_milli}"
                );
            }
            Event::ArmSwitch { from, to, ipc_milli, mpki_milli } => {
                let _ = write!(
                    out,
                    ",\"from\":\"{from}\",\"to\":\"{to}\",\"ipc_milli\":{ipc_milli},\"mpki_milli\":{mpki_milli}"
                );
            }
        }
        out.push_str("}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_flat_objects_with_cycle_first() {
        let mut out = String::new();
        Event::DistanceRepaired {
            trace: 3,
            group: 0x2000,
            pc: 0x2008,
            old: 2,
            new: 3,
            avg_latency_x100: 12345,
        }
        .write_jsonl(900, &mut out);
        assert_eq!(
            out,
            "{\"cycle\":900,\"event\":\"distance_repaired\",\"trace\":3,\"group\":8192,\
             \"pc\":8200,\"old\":2,\"new\":3,\"avg_latency_x100\":12345}\n"
        );
    }

    #[test]
    fn optional_fields_are_omitted_when_absent() {
        let mut with = String::new();
        let mut without = String::new();
        Event::TraceInstalled { trace: 1, head: 16, cc_addr: 32, replaces: Some(0) }
            .write_jsonl(1, &mut with);
        Event::TraceInstalled { trace: 1, head: 16, cc_addr: 32, replaces: None }
            .write_jsonl(1, &mut without);
        assert!(with.contains("\"replaces\":0"));
        assert!(!without.contains("replaces"));
    }

    #[test]
    fn names_cover_every_variant() {
        // Spot checks that names() agrees with the published schema list.
        assert!(EVENT_NAMES.contains(&Event::HelperFinish { job: 0 }.name()));
        assert!(EVENT_NAMES.contains(
            &Event::Sample {
                insts: 0,
                dcycles: 0,
                ipc_milli: 0,
                l1_miss_milli: 0,
                l2_miss_milli: 0,
                pf_acc_milli: 0
            }
            .name()
        ));
        assert!(EVENT_NAMES.contains(
            &Event::ArmSwitch { from: "stream", to: "delta", ipc_milli: 0, mpki_milli: 0 }.name()
        ));
    }

    #[test]
    fn arm_switch_serializes_names_and_window_metrics() {
        let mut out = String::new();
        Event::ArmSwitch { from: "stream", to: "nextline", ipc_milli: 850, mpki_milli: 12_500 }
            .write_jsonl(4242, &mut out);
        assert_eq!(
            out,
            "{\"cycle\":4242,\"event\":\"arm_switch\",\"from\":\"stream\",\"to\":\"nextline\",\
             \"ipc_milli\":850,\"mpki_milli\":12500}\n"
        );
    }
}
