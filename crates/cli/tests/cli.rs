//! Spawned-binary tests: `tdo serve` + `tdo ping` end to end over a real
//! socket (the in-repo client is what CI uses — there is no curl), plus the
//! `tdo store` maintenance actions.

use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const TDO: &str = env!("CARGO_BIN_EXE_tdo");

/// A unique scratch directory per test, removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tdo-cli-test-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        TestDir(dir)
    }

    fn path(&self) -> String {
        self.0.display().to_string()
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Kills the daemon if the test panics before the graceful shutdown.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn tdo(args: &[&str]) -> Output {
    Command::new(TDO).args(args).output().expect("spawn tdo")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Successful invocation, returning stdout.
fn ok(args: &[&str]) -> String {
    let out = tdo(args);
    assert!(
        out.status.success(),
        "`tdo {}` failed: {}{}",
        args.join(" "),
        stdout_of(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    stdout_of(&out)
}

#[test]
fn serve_and_ping_round_trip() {
    let store = TestDir::new("serve");
    let mut child = ChildGuard(
        Command::new(TDO)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "1",
                "--queue",
                "4",
                "--store-dir",
                &store.path(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn tdo serve"),
    );

    // The daemon announces its (ephemeral) address on the first stdout line.
    let mut banner = String::new();
    let mut stdout = BufReader::new(child.0.stdout.take().expect("stdout piped"));
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();

    // Liveness (every GET ping reports its round-trip time), then the
    // suite listing.
    let health = ok(&["ping", &addr]);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("rtt_us min="), "{health}");
    assert!(health.contains("(1 pings)"), "{health}");
    let multi = ok(&["ping", &addr, "--count", "3"]);
    assert!(multi.contains("(3 pings)"), "{multi}");
    assert!(ok(&["ping", &addr, "--workloads"]).contains("\"name\":\"mcf\""));

    // The Prometheus exposition is served, parses strictly, and carries the
    // per-endpoint counters.
    let prom = ok(&["ping", &addr, "--prom"]);
    assert!(prom.contains("exposition valid"), "{prom}");
    assert!(prom.contains("tdo_server_requests_total"), "{prom}");
    assert!(prom.contains("tdo_server_request_latency_us_count"), "{prom}");

    // One simulation; the identical repeat is served from the memo cache.
    let run = &["ping", &addr, "--run", "swim", "--arm", "sr", "--insts", "20000"];
    let first = ok(run);
    assert!(first.contains("\"cycles\":"), "{first}");
    let repeat = ok(run);
    assert!(repeat.contains("\"cycles\":"), "{repeat}");

    // The health dashboard over /metrics/history: one deterministic frame,
    // and two idle frames must agree byte for byte (the scrape itself is
    // excluded from sampling).
    let frame = ok(&["top", &addr, "--once"]);
    assert!(frame.contains("health plane:"), "{frame}");
    for row in ["runs", "run_p95_us", "queue_cap", "arm_issued:stream", "watchdog:slo_burn"] {
        assert!(frame.contains(row), "want `{row}` in frame:\n{frame}");
    }
    let again = ok(&["top", &addr, "--once"]);
    assert_eq!(frame, again, "idle top frames must be byte-identical");

    // /metrics over `tdo ping`: counters reflect exactly what we did.
    let metrics = ok(&["ping", &addr, "--metrics"]);
    for expected in [
        "\"health\":4", // 1 liveness ping + 3 counted pings
        "\"workloads\":1",
        "\"run_ok\":2",
        "\"sims\":1",
        "\"store_misses\":1",
        "\"puts\":1",
    ] {
        assert!(metrics.contains(expected), "want {expected} in {metrics}");
    }

    // Graceful stop; the daemon must exit cleanly on its own.
    assert!(ok(&["ping", &addr, "--shutdown"]).contains("shutting_down"));
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.0.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon did not exit after /shutdown");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "daemon exit status: {status:?}");

    let mut stderr_text = String::new();
    let _ = child.0.stderr.take().expect("stderr piped").read_to_string(&mut stderr_text);
    assert!(stderr_text.contains("shut down cleanly"), "{stderr_text}");
    assert!(stderr_text.contains("store: hits=0 misses=1 sims=1"), "{stderr_text}");

    // With the daemon gone, ping reports the failure as a nonzero exit.
    assert!(!tdo(&["ping", &addr]).status.success());

    // The round trip left one record behind; `store stats` breaks it down
    // per generation with record-size accounting.
    let stats = ok(&["store", "stats", "--store-dir", &store.path()]);
    assert!(stats.contains("live records       1"), "{stats}");
    assert!(stats.contains("v3"), "{stats}");
    assert!(stats.contains("record bytes       mean"), "{stats}");
}

#[test]
fn perf_baseline_is_deterministic_and_gates() {
    let dir = TestDir::new("perf");
    fs::create_dir_all(&dir.0).expect("mkdir");
    let a_path = format!("{}/a.json", dir.path());
    let b_path = format!("{}/b.json", dir.path());
    let common: &[&str] = &["perf", "--quick", "--insts", "3000", "--no-store"];

    // Same suite under 1 and 4 engine workers: the baselines must agree
    // byte-for-byte once wall-clock keys are stripped.
    let table = ok(&[common, &["--jobs", "1", "--out", &a_path]].concat());
    assert!(table.contains("total throughput:"), "{table}");
    ok(&[common, &["--jobs", "4", "--out", &b_path]].concat());
    let strip = |p: &str| {
        fs::read_to_string(p)
            .expect("baseline written")
            .lines()
            .filter(|l| !l.contains("\"wall_"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a_path), strip(&b_path), "worker count leaked into the baseline");

    // Self-check against the just-written baseline passes at any sane
    // tolerance (100% floors the gate at zero — immune to host noise).
    let checked = ok(&[common, &["--check", &a_path, "--tolerance", "100"]].concat());
    assert!(checked.contains("throughput ok"), "{checked}");

    // An absurdly fast fake baseline trips the gate.
    let fake = format!("{}/fake.json", dir.path());
    fs::write(&fake, "{\n  \"wall_total_insts_per_sec\": 18446744073709551615\n}\n")
        .expect("write fake baseline");
    let failed = tdo(&[common, &["--check", &fake, "--tolerance", "0"]].concat());
    assert!(!failed.status.success(), "gate must fail against an unreachable baseline");
    assert!(
        String::from_utf8_lossy(&failed.stderr).contains("throughput regression"),
        "stderr: {}",
        String::from_utf8_lossy(&failed.stderr)
    );
}

#[test]
fn why_narrates_repairs_and_arm_switches_with_evidence() {
    let store = TestDir::new("why");
    // phaseshift: the self-repair arm repairs distances and the policy
    // controller switches arms, so both ledger sections are populated.
    let out = ok(&["why", "phaseshift", "--store-dir", &store.path()]);
    assert!(out.contains("phaseshift decision audit (test scale)"), "{out}");
    assert!(out.contains("distance repairs under SwSelfRepair"), "{out}");
    assert!(out.contains("tolerance 20m"), "{out}");
    assert!(out.contains("policy arm switches:"), "{out}");
    assert!(out.contains("ipc "), "{out}");
    assert!(out.contains("mpki "), "{out}");
    // The narrated switch count is the counter's own number, not a resample.
    let header = out.lines().find(|l| l.starts_with("policy arm switches:")).expect("section");
    assert!(!header.contains(" 0 recorded"), "phaseshift must switch arms: {header}");

    // Same cells again, warm store: the narration must be byte-identical.
    let again = ok(&["why", "phaseshift", "--store-dir", &store.path()]);
    assert_eq!(out, again, "warm-store why must replay the identical ledger");

    // Machine-readable mode carries the raw records for CI artifacts.
    let csv = ok(&["why", "phaseshift", "--format", "csv", "--store-dir", &store.path()]);
    assert!(csv.lines().any(|l| l.starts_with("repair,")), "{csv}");
    assert!(csv.lines().any(|l| l.starts_with("arm_switch,")), "{csv}");
}

#[test]
fn store_maintenance_actions_on_an_empty_store() {
    let dir = TestDir::new("store");
    let stats = ok(&["store", "stats", "--store-dir", &dir.path()]);
    assert!(stats.contains("live records       0"), "{stats}");

    let verify = ok(&["store", "verify", "--store-dir", &dir.path()]);
    assert!(verify.contains("0 good, 0 corrupt"), "{verify}");

    let gc = ok(&["store", "gc", "--store-dir", &dir.path()]);
    assert!(gc.contains("kept 0"), "{gc}");

    let bad = tdo(&["store", "explode", "--store-dir", &dir.path()]);
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("unknown store action"),
        "stderr: {}",
        String::from_utf8_lossy(&bad.stderr)
    );
}
