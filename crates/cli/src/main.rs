//! `tdo` — drive the self-repairing prefetcher stack from the command line.
//!
//! ```text
//! tdo list                         # workloads and their characterizations
//! tdo run mcf --arm sr --full      # one run, summary report
//! tdo compare art --jobs 4        # every arm side by side, in parallel
//! tdo disasm gap | head            # workload disassembly
//! tdo traces mcf --arm sr          # installed hot traces after a run
//! tdo timeline mcf --trace-out t.json   # repair convergence + event trace
//! tdo trace-validate t.json        # schema-check an emitted trace file
//! ```
//!
//! `run` and `compare` execute through the shared experiment engine
//! ([`tdo_sim::Runner`]): `compare` simulates all arms across `--jobs`
//! worker threads, and repeated cells within one invocation are memoized.

use std::process::ExitCode;

use tdo_isa::{decode, INST_BYTES};
use tdo_obs::{validate_chrome_trace, validate_jsonl};
use tdo_sim::{
    run_traced, Cell, ExperimentSpec, Format, Machine, PrefetchSetup, Report, Runner, SimConfig,
    SimResult, Timeline,
};
use tdo_trident::TraceOp;
use tdo_workloads::{build, names, Scale, Workload};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tdo <command> [args]\n\
         \n\
         commands:\n\
         \x20 list                      workloads and descriptions\n\
         \x20 run <workload> [opts]     simulate one workload\n\
         \x20 compare <workload> [opts] simulate every arm\n\
         \x20 disasm <workload>         dump the workload's code\n\
         \x20 traces <workload> [opts]  dump installed hot traces after a run\n\
         \x20 timeline <workload> [opts] cycle-stamped repair-convergence report\n\
         \x20 trace-validate <file>     schema-check an emitted JSONL/Chrome trace\n\
         \n\
         options:\n\
         \x20 --arm <none|hw4x4|hw8x8|basic|whole|sr|swonly>   (default sr)\n\
         \x20 --full                    paper-scale run (default: test scale)\n\
         \x20 --insts <N>               measured original instructions\n\
         \x20 --jobs <N>                parallel simulations (0 = all cores)\n\
         \x20 --format <table|csv|json> result rendering (default table)\n\
         \x20 --trace-out <path>        write a Chrome trace_event file (timeline)\n\
         \x20 --jsonl-out <path>        write the raw JSONL event log (timeline)\n\
         \x20 --quick                   shorten the run for CI (timeline)"
    );
    ExitCode::FAILURE
}

struct Opts {
    arm: PrefetchSetup,
    full: bool,
    insts: Option<u64>,
    jobs: usize,
    format: Format,
    trace_out: Option<String>,
    jsonl_out: Option<String>,
    quick: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        arm: PrefetchSetup::SwSelfRepair,
        full: false,
        insts: None,
        jobs: 0,
        format: Format::Table,
        trace_out: None,
        jsonl_out: None,
        quick: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => o.full = true,
            "--quick" => o.quick = true,
            "--trace-out" => {
                o.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--jsonl-out" => {
                o.jsonl_out = Some(it.next().ok_or("--jsonl-out needs a path")?.clone());
            }
            "--arm" => {
                let v = it.next().ok_or("--arm needs a value")?;
                o.arm = match v.as_str() {
                    "none" => PrefetchSetup::NoPrefetch,
                    "hw4x4" => PrefetchSetup::Hw4x4,
                    "hw8x8" => PrefetchSetup::Hw8x8,
                    "basic" => PrefetchSetup::SwBasic,
                    "whole" => PrefetchSetup::SwWholeObject,
                    "sr" => PrefetchSetup::SwSelfRepair,
                    "swonly" => PrefetchSetup::SwOnlySelfRepair,
                    other => return Err(format!("unknown arm `{other}`")),
                };
            }
            "--insts" => {
                let v = it.next().ok_or("--insts needs a value")?;
                o.insts = Some(v.parse().map_err(|_| format!("bad --insts `{v}`"))?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                o.format = v.parse()?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn scale(o: &Opts) -> Scale {
    if o.full {
        Scale::Full
    } else {
        Scale::Test
    }
}

fn load_workload(name: &str, full: bool) -> Result<Workload, String> {
    let scale = if full { Scale::Full } else { Scale::Test };
    build(name, scale).ok_or_else(|| format!("unknown workload `{name}`; try `tdo list`"))
}

fn config(o: &Opts, arm: PrefetchSetup) -> SimConfig {
    let mut cfg = if o.full { SimConfig::paper(arm) } else { SimConfig::test(arm) };
    if let Some(n) = o.insts {
        cfg.measure_insts = n;
    }
    cfg
}

fn report(r: &SimResult) {
    println!("  cycles           {}", r.cycles);
    println!("  orig insts       {}", r.orig_insts);
    println!("  IPC              {:.4}", r.ipc());
    println!("  helper active    {:.2}%", r.helper_active_fraction() * 100.0);
    println!(
        "  traces           {} installed, {} reoptimized, {} backed out",
        r.trident.traces_installed, r.trident.reoptimizations, r.trident.backouts
    );
    println!(
        "  events           {} queued, {} dropped saturated, {} dropped duplicate",
        r.trident.events_queued,
        r.trident.events_dropped_saturated,
        r.trident.events_dropped_duplicate
    );
    println!(
        "  optimizer        {} events, {} insertions, {} repairs ({} up / {} down), {} matured",
        r.optimizer.events,
        r.optimizer.insertions,
        r.optimizer.repairs,
        r.optimizer.distance_up,
        r.optimizer.distance_down,
        r.optimizer.matured
    );
    if r.optimizer.groups > 0 {
        println!(
            "  convergence      {} groups, {:.1} repairs/group, {:.0} avg cycles to converge",
            r.optimizer.groups,
            r.repairs_per_group(),
            r.avg_cycles_to_converge()
        );
    }
    let b = r.load_breakdown();
    println!(
        "  loads            {:.1}% hit | {:.1}% hit-pf | {:.1}% partial | {:.1}% miss | {:.2}% miss-by-pf",
        b[0] * 100.0,
        b[1] * 100.0,
        b[2] * 100.0,
        b[3] * 100.0,
        b[4] * 100.0
    );
    println!(
        "  miss coverage    {:.1}% in traces, {:.1}% prefetched",
        r.miss_coverage_by_traces() * 100.0,
        r.miss_coverage_by_prefetcher() * 100.0
    );
}

/// The run summary as a machine-readable report (csv/json modes).
fn metrics_report(name: &str, arm: PrefetchSetup, r: &SimResult) -> Report {
    let mut rep = Report::new("run").key("metric", 18).col("value", 12);
    let b = r.load_breakdown();
    for (metric, value) in [
        ("workload", name.to_string()),
        ("arm", format!("{arm:?}")),
        ("cycles", r.cycles.to_string()),
        ("orig_insts", r.orig_insts.to_string()),
        ("ipc", format!("{:.5}", r.ipc())),
        ("helper_active_frac", format!("{:.5}", r.helper_active_fraction())),
        ("hits", format!("{:.5}", b[0])),
        ("hit_prefetched", format!("{:.5}", b[1])),
        ("partial", format!("{:.5}", b[2])),
        ("miss", format!("{:.5}", b[3])),
        ("miss_by_prefetch", format!("{:.5}", b[4])),
        ("miss_in_traces_frac", format!("{:.5}", r.miss_coverage_by_traces())),
        ("miss_prefetched_frac", format!("{:.5}", r.miss_coverage_by_prefetcher())),
        ("events_queued", r.trident.events_queued.to_string()),
        ("dropped_saturated", r.trident.events_dropped_saturated.to_string()),
        ("dropped_duplicate", r.trident.events_dropped_duplicate.to_string()),
        ("repairs_per_group", format!("{:.3}", r.repairs_per_group())),
        ("avg_converge_cycles", format!("{:.0}", r.avg_cycles_to_converge())),
    ] {
        rep.row(metric, [value]);
    }
    rep
}

fn cmd_list() -> ExitCode {
    for name in names() {
        let w = build(name, Scale::Test).expect("suite workload");
        println!("{name:<10} {}", w.description);
    }
    ExitCode::SUCCESS
}

fn cmd_run(name: &str, o: &Opts) -> Result<ExitCode, String> {
    load_workload(name, o.full)?; // validate the name up front
    let runner = Runner::new(o.jobs);
    let r = runner.run_cell(&Cell::new(name, scale(o), config(o, o.arm)));
    if o.format == Format::Table {
        println!(
            "{name} under {:?} ({}):",
            o.arm,
            if o.full { "full scale" } else { "test scale" }
        );
        report(&r);
    } else {
        print!("{}", metrics_report(name, o.arm, &r).render(o.format));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(name: &str, o: &Opts) -> Result<ExitCode, String> {
    load_workload(name, o.full)?;
    let runner = Runner::new(o.jobs);
    let mut spec = ExperimentSpec::new();
    for arm in PrefetchSetup::ALL {
        spec.push(Cell::new(name, scale(o), config(o, arm)));
    }
    let _ = runner.run_spec(&spec);

    let base = runner.run_cell(&Cell::new(name, scale(o), config(o, PrefetchSetup::Hw8x8)));
    let mut rep = Report::new("compare").key("arm", 18).col("IPC", 10).col("vs hw8x8", 10).rule(0);
    for arm in PrefetchSetup::ALL {
        let r = runner.run_cell(&Cell::new(name, scale(o), config(o, arm)));
        rep.row(
            format!("{arm:?}"),
            [format!("{:.4}", r.ipc()), format!("{:>9.1}%", (r.speedup_over(&base) - 1.0) * 100.0)],
        );
    }
    print!("{}", rep.render(o.format));
    Ok(ExitCode::SUCCESS)
}

fn cmd_disasm(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    for (i, word) in w.program.code.iter().enumerate() {
        let pc = w.program.code_base + i as u64 * INST_BYTES;
        match decode(*word) {
            Ok(inst) => println!("{pc:#10x}  {inst}"),
            Err(e) => println!("{pc:#10x}  <invalid: {e}>"),
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_traces(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    let machine = Machine::new(&w, config(o, o.arm));
    let mut dumped = false;
    let r = machine.run_with_inspect(&mut |m| {
        for id in m.installed_traces() {
            let Some(t) = m.trident().trace(id) else { continue };
            println!(
                "trace {:?} @ {:#x}  (head {:#x}, {} insts{})",
                id,
                t.cc_addr,
                t.head,
                t.insts.len(),
                if t.is_loop { ", loop" } else { "" }
            );
            for (i, ti) in t.insts.iter().enumerate() {
                let mark = if ti.synthetic { "  <- inserted" } else { "" };
                match ti.op {
                    TraceOp::Real(inst) => println!("  [{i:>3}] {inst}{mark}"),
                    TraceOp::CondExit { cond, ra, to } => {
                        println!("  [{i:>3}] exit-if {cond:?} {ra} -> {to:#x}")
                    }
                    TraceOp::JumpBack { to } => println!("  [{i:>3}] jump-back -> {to:#x}"),
                    TraceOp::LoopBack => println!("  [{i:>3}] loop-back"),
                }
            }
            dumped = true;
        }
    });
    if !dumped {
        println!("(no traces installed)");
    }
    if o.format == Format::Table {
        println!();
        report(&r);
    } else {
        print!("{}", metrics_report(name, o.arm, &r).render(o.format));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_timeline(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    let mut cfg = config(o, o.arm);
    if o.quick {
        cfg.measure_insts = cfg.measure_insts.min(100_000);
    }
    // A timeline run is one machine on one thread: `--jobs` cannot change a
    // single cell's execution, so the emitted bytes are identical for any
    // worker count.
    let (r, recorder) = run_traced(&w, &cfg);
    let timeline = Timeline::from_events(recorder.events());

    if let Some(path) = &o.jsonl_out {
        std::fs::write(path, recorder.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {} events to {path}", recorder.len());
    }
    if let Some(path) = &o.trace_out {
        std::fs::write(path, recorder.to_chrome_trace())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (load in about:tracing or Perfetto)");
    }

    println!(
        "{name} under {:?} ({}): repair convergence",
        o.arm,
        if o.full { "full scale" } else { "test scale" }
    );
    print!("{}", timeline.render_convergence());
    println!();
    println!("windowed performance (every {} insts):", cfg.sample_insts);
    print!("{}", timeline.render_samples());
    println!();
    report(&r);
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace_validate(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let what = if text.starts_with("{\"traceEvents\":[") {
        let n = validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid Chrome trace ({n} entries)")
    } else {
        let n = validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid JSONL event log ({n} events)")
    };
    println!("{path}: {what}");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let run = || -> Result<ExitCode, String> {
        match cmd.as_str() {
            "list" => Ok(cmd_list()),
            "trace-validate" => {
                let Some(path) = args.get(1) else {
                    return Err("trace-validate needs a file path".into());
                };
                cmd_trace_validate(path)
            }
            "run" | "compare" | "disasm" | "traces" | "timeline" => {
                let Some(name) = args.get(1) else {
                    return Err(format!("{cmd} needs a workload name"));
                };
                let opts = parse_opts(&args[2..])?;
                match cmd.as_str() {
                    "run" => cmd_run(name, &opts),
                    "compare" => cmd_compare(name, &opts),
                    "disasm" => cmd_disasm(name, &opts),
                    "timeline" => cmd_timeline(name, &opts),
                    _ => cmd_traces(name, &opts),
                }
            }
            other => Err(format!("unknown command `{other}`")),
        }
    };
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
