//! `tdo` — drive the self-repairing prefetcher stack from the command line.
//!
//! ```text
//! tdo list                         # workloads and their characterizations
//! tdo run mcf --arm sr --full      # one run, summary report
//! tdo compare art --jobs 4        # every arm side by side, in parallel
//! tdo disasm gap | head            # workload disassembly
//! tdo traces mcf --arm sr          # installed hot traces after a run
//! tdo timeline mcf --trace-out t.json   # repair convergence + event trace
//! tdo trace-validate t.json        # schema-check an emitted trace file
//! tdo serve --addr 127.0.0.1:7077  # result-serving daemon over the store
//! tdo store stats                  # persistent result-store maintenance
//! tdo ping 127.0.0.1:7077          # in-repo HTTP client (health/metrics/run)
//! ```
//!
//! `run` and `compare` execute through the shared experiment engine
//! ([`tdo_sim::Runner`]): `compare` simulates all arms across `--jobs`
//! worker threads, repeated cells within one invocation are memoized, and —
//! unless `--no-store` is given — results persist to the content-addressed
//! store (`--store-dir`, `$TDO_STORE`, default `.tdo-store/`), so repeat
//! invocations simulate nothing.

use std::io::{IsTerminal as _, Write as _};
use std::process::ExitCode;

use tdo_isa::{decode, INST_BYTES};
use tdo_obs::{validate_chrome_trace, validate_jsonl};
use tdo_server::{client, install_sigint_handler, Server, ServerConfig};
use tdo_sim::{
    policy_candidates, run_traced, Cell, ExperimentSpec, Format, Machine, PrefetchSetup, Report,
    Runner, SimConfig, SimResult, Timeline, SCHEMA_VERSION,
};
use tdo_store::Store;
use tdo_trident::TraceOp;
use tdo_workloads::{build, names, Scale, Workload};

/// Every dispatched subcommand, with its one-line summary. The dispatcher
/// and the usage text are both driven by this table, and a unit test pins
/// every entry into [`usage_text`] so the help cannot drift from the code.
const COMMANDS: &[(&str, &str)] = &[
    ("list", "workloads and descriptions"),
    ("run", "simulate one workload: run <workload> [opts]"),
    ("compare", "simulate every arm: compare <workload> [opts]"),
    ("disasm", "dump the workload's code: disasm <workload>"),
    ("traces", "dump installed hot traces after a run: traces <workload> [opts]"),
    ("timeline", "cycle-stamped repair-convergence report: timeline <workload> [opts]"),
    ("trace-validate", "schema-check an emitted trace/flight/log file: trace-validate <file>"),
    ("flight", "render a flight-recorder dump as per-trace span trees: flight <dump>"),
    ("serve", "HTTP daemon serving results from the store: serve [opts]"),
    ("store", "persistent store maintenance: store <stats|verify|gc> [opts]"),
    ("ping", "HTTP client for a running daemon: ping <addr> [opts]"),
    ("top", "live health dashboard over /metrics/history: top <addr> [opts]"),
    ("why", "decision-audit ledger narration: why <workload> [opts]"),
    ("perf", "throughput baseline + regression gate: perf [opts]"),
    ("chaos", "seeded fault-injection + crash-recovery sweep: chaos [opts]"),
];

fn usage_text() -> String {
    let mut text = String::from("usage: tdo <command> [args]\n\ncommands:\n");
    for (name, summary) in COMMANDS {
        text.push_str(&format!("  {name:<15} {summary}\n"));
    }
    text.push_str(
        "\nworkload options (run/compare/disasm/traces/timeline/why):\n\
         \x20 --arm <none|hw4x4|hw8x8|basic|whole|sr|swonly|nl|adanl|delta|policy>\n\
         \x20                           (default sr)\n\
         \x20 --arms <all|a,b,...>      arm x workload matrix over the whole\n\
         \x20                           suite + phaseshift (compare only;\n\
         \x20                           replaces the workload argument)\n\
         \x20 --full                    paper-scale run (default: test scale)\n\
         \x20 --insts <N>               measured original instructions\n\
         \x20 --jobs <N>                parallel simulations (0 = all cores)\n\
         \x20 --format <table|csv|json> result rendering (default table)\n\
         \x20 --trace-out <path>        write a Chrome trace_event file (timeline)\n\
         \x20 --jsonl-out <path>        write the raw JSONL event log (timeline)\n\
         \x20 --quick                   shorten the run for CI (timeline)\n\
         \x20 --store-dir <dir>         persistent result store directory\n\
         \x20                           (default: $TDO_STORE or .tdo-store/)\n\
         \x20 --no-store                skip the persistent result store\n\
         \nserve options:\n\
         \x20 --addr <host:port>        listen address (default 127.0.0.1:7077)\n\
         \x20 --threads <N>             simulation worker threads (default 2)\n\
         \x20 --queue <N>               bounded /run queue; beyond it requests\n\
         \x20                           shed with 503 (default 16)\n\
         \x20 --slo-us <N>              /run latency SLO in µs; a breach dumps\n\
         \x20                           the flight recorder (default 0 = off)\n\
         \x20 --flight-dir <dir>        directory for flight-recorder dumps on\n\
         \x20                           panic/saturation/SLO breach\n\
         \x20 --store-dir / --no-store  as above\n\
         \nstore actions (all honour --store-dir):\n\
         \x20 stats                     record/byte/hit counters\n\
         \x20 verify                    checksum every record in the log\n\
         \x20 gc                        drop stale-schema + shadowed records\n\
         \nping options:\n\
         \x20 (default)                 GET /health\n\
         \x20 --metrics                 GET /metrics\n\
         \x20 --prom                    GET /metrics?format=prom and validate it\n\
         \x20 --workloads               GET /workloads\n\
         \x20 --path </p>               GET an arbitrary path\n\
         \x20 --count <N>               repeat the GET N times, report RTT\n\
         \x20                           min/avg/max in integer microseconds\n\
         \x20 --run <workload>          POST /run (honours --arm/--full/--insts)\n\
         \x20 --shutdown                POST /shutdown (graceful stop)\n\
         \ntop options (tdo top <addr> polls GET /metrics/history):\n\
         \x20 --once                    render one frame and exit\n\
         \x20 --window <N>              history rows to fetch (default 0 = all)\n\
         \x20 --interval-ms <N>         live refresh period (default 1000)\n\
         \x20 --format <table|csv|json> frame rendering (default table)\n\
         \nwhy options (plus the workload options above):\n\
         \x20 narrates the run's decision-audit ledger: every distance repair\n\
         \x20 under --arm plus every policy arm switch, with the windowed\n\
         \x20 latency / milli-IPC / milli-MPKI evidence behind each decision\n\
         \nperf options:\n\
         \x20 --quick                   test-scale suite (CI-sized)\n\
         \x20 --jobs <N>                parallel engine workers for phase A\n\
         \x20 --insts <N>               measured-instruction override\n\
         \x20 --out <path>              write the BENCH_PR6.json baseline\n\
         \x20 --check <path>            gate against a committed baseline\n\
         \x20 --tolerance <pct>         allowed throughput regression (default 15)\n\
         \x20 --format <table|csv|json> summary rendering\n\
         \x20 --store-dir / --no-store  as above\n\
         \nchaos options:\n\
         \x20 --seed <N>                fault-plan seed (default 1); the whole\n\
         \x20                           sweep is a pure function of it\n\
         \x20 --quick                   CI-sized sweep\n\
         \x20 --jobs <N>                engine workers for the jitter phase\n\
         \x20 --summary-out <path>      write the fault-site coverage summary\n\
         \x20 --flight-out <path>       write the attribution scenario's flight\n\
         \x20                           dump (and its log as <path>.log)\n",
    );
    text
}

fn usage() -> ExitCode {
    eprint!("{}", usage_text());
    ExitCode::FAILURE
}

struct Opts {
    arm: PrefetchSetup,
    arms: Option<String>,
    full: bool,
    insts: Option<u64>,
    jobs: usize,
    format: Format,
    trace_out: Option<String>,
    jsonl_out: Option<String>,
    quick: bool,
    store_dir: Option<String>,
    no_store: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        arm: PrefetchSetup::SwSelfRepair,
        arms: None,
        full: false,
        insts: None,
        jobs: 0,
        format: Format::Table,
        trace_out: None,
        jsonl_out: None,
        quick: false,
        store_dir: None,
        no_store: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => o.full = true,
            "--quick" => o.quick = true,
            "--no-store" => o.no_store = true,
            "--trace-out" => {
                o.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--jsonl-out" => {
                o.jsonl_out = Some(it.next().ok_or("--jsonl-out needs a path")?.clone());
            }
            "--store-dir" => {
                o.store_dir = Some(it.next().ok_or("--store-dir needs a directory")?.clone());
            }
            "--arm" => {
                let v = it.next().ok_or("--arm needs a value")?;
                o.arm =
                    PrefetchSetup::from_cli_name(v).ok_or_else(|| format!("unknown arm `{v}`"))?;
            }
            "--arms" => {
                o.arms = Some(it.next().ok_or("--arms needs `all` or a comma list")?.clone());
            }
            "--insts" => {
                let v = it.next().ok_or("--insts needs a value")?;
                o.insts = Some(v.parse().map_err(|_| format!("bad --insts `{v}`"))?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                o.format = v.parse()?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

/// The engine for `run`/`compare`: store-backed unless `--no-store`.
fn runner(o: &Opts) -> Runner {
    if o.no_store {
        Runner::new(o.jobs)
    } else {
        Runner::with_default_store(o.jobs, o.store_dir.as_deref())
    }
}

/// Prints the store accounting footer to stderr (stdout report bytes stay
/// identical warm or cold).
fn store_footer(runner: &Runner) {
    if let Some(summary) = runner.store_summary() {
        eprintln!("{summary}");
    }
}

fn scale(o: &Opts) -> Scale {
    if o.full {
        Scale::Full
    } else {
        Scale::Test
    }
}

fn load_workload(name: &str, full: bool) -> Result<Workload, String> {
    let scale = if full { Scale::Full } else { Scale::Test };
    build(name, scale).ok_or_else(|| format!("unknown workload `{name}`; try `tdo list`"))
}

fn config(o: &Opts, arm: PrefetchSetup) -> SimConfig {
    let mut cfg = if o.full { SimConfig::paper(arm) } else { SimConfig::test(arm) };
    if let Some(n) = o.insts {
        cfg.measure_insts = n;
    }
    cfg
}

fn report(r: &SimResult) {
    println!("  cycles           {}", r.cycles);
    println!("  orig insts       {}", r.orig_insts);
    println!("  IPC              {:.4}", r.ipc());
    println!("  helper active    {:.2}%", r.helper_active_fraction() * 100.0);
    println!(
        "  traces           {} installed, {} reoptimized, {} backed out",
        r.trident.traces_installed, r.trident.reoptimizations, r.trident.backouts
    );
    println!(
        "  events           {} queued, {} dropped saturated, {} dropped duplicate",
        r.trident.events_queued,
        r.trident.events_dropped_saturated,
        r.trident.events_dropped_duplicate
    );
    println!(
        "  optimizer        {} events, {} insertions, {} repairs ({} up / {} down), {} matured",
        r.optimizer.events,
        r.optimizer.insertions,
        r.optimizer.repairs,
        r.optimizer.distance_up,
        r.optimizer.distance_down,
        r.optimizer.matured
    );
    if r.optimizer.groups > 0 {
        println!(
            "  convergence      {} groups, {:.1} repairs/group, {:.0} avg cycles to converge",
            r.optimizer.groups,
            r.repairs_per_group(),
            r.avg_cycles_to_converge()
        );
    }
    let b = r.load_breakdown();
    println!(
        "  loads            {:.1}% hit | {:.1}% hit-pf | {:.1}% partial | {:.1}% miss | {:.2}% miss-by-pf",
        b[0] * 100.0,
        b[1] * 100.0,
        b[2] * 100.0,
        b[3] * 100.0,
        b[4] * 100.0
    );
    println!(
        "  miss coverage    {:.1}% in traces, {:.1}% prefetched",
        r.miss_coverage_by_traces() * 100.0,
        r.miss_coverage_by_prefetcher() * 100.0
    );
}

/// The run summary as a machine-readable report (csv/json modes).
fn metrics_report(name: &str, arm: PrefetchSetup, r: &SimResult) -> Report {
    let mut rep = Report::new("run").key("metric", 18).col("value", 12);
    let b = r.load_breakdown();
    for (metric, value) in [
        ("workload", name.to_string()),
        ("arm", format!("{arm:?}")),
        ("cycles", r.cycles.to_string()),
        ("orig_insts", r.orig_insts.to_string()),
        ("ipc", format!("{:.5}", r.ipc())),
        ("helper_active_frac", format!("{:.5}", r.helper_active_fraction())),
        ("hits", format!("{:.5}", b[0])),
        ("hit_prefetched", format!("{:.5}", b[1])),
        ("partial", format!("{:.5}", b[2])),
        ("miss", format!("{:.5}", b[3])),
        ("miss_by_prefetch", format!("{:.5}", b[4])),
        ("miss_in_traces_frac", format!("{:.5}", r.miss_coverage_by_traces())),
        ("miss_prefetched_frac", format!("{:.5}", r.miss_coverage_by_prefetcher())),
        ("events_queued", r.trident.events_queued.to_string()),
        ("dropped_saturated", r.trident.events_dropped_saturated.to_string()),
        ("dropped_duplicate", r.trident.events_dropped_duplicate.to_string()),
        ("repairs_per_group", format!("{:.3}", r.repairs_per_group())),
        ("avg_converge_cycles", format!("{:.0}", r.avg_cycles_to_converge())),
    ] {
        rep.row(metric, [value]);
    }
    rep
}

fn cmd_list() -> ExitCode {
    for name in names() {
        let w = build(name, Scale::Test).expect("suite workload");
        println!("{name:<10} {}", w.description);
    }
    ExitCode::SUCCESS
}

fn cmd_run(name: &str, o: &Opts) -> Result<ExitCode, String> {
    load_workload(name, o.full)?; // validate the name up front
    let runner = runner(o);
    let r = runner.run_cell(&Cell::new(name, scale(o), config(o, o.arm)));
    store_footer(&runner);
    if o.format == Format::Table {
        println!(
            "{name} under {:?} ({}):",
            o.arm,
            if o.full { "full scale" } else { "test scale" }
        );
        report(&r);
    } else {
        print!("{}", metrics_report(name, o.arm, &r).render(o.format));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(name: &str, o: &Opts) -> Result<ExitCode, String> {
    load_workload(name, o.full)?;
    let runner = runner(o);
    let mut spec = ExperimentSpec::new();
    for arm in PrefetchSetup::ALL {
        spec.push(Cell::new(name, scale(o), config(o, arm)));
    }
    let _ = runner.run_spec(&spec);

    let base = runner.run_cell(&Cell::new(name, scale(o), config(o, PrefetchSetup::Hw8x8)));
    let mut rep = Report::new("compare").key("arm", 18).col("IPC", 10).col("vs hw8x8", 10).rule(0);
    for arm in PrefetchSetup::ALL {
        let r = runner.run_cell(&Cell::new(name, scale(o), config(o, arm)));
        rep.row(
            format!("{arm:?}"),
            [format!("{:.4}", r.ipc()), format!("{:>9.1}%", (r.speedup_over(&base) - 1.0) * 100.0)],
        );
    }
    print!("{}", rep.render(o.format));
    store_footer(&runner);
    Ok(ExitCode::SUCCESS)
}

/// The hardware-prefetcher arsenal plus the policy controller: the arm set
/// `compare --arms all` sweeps. The policy column is last so the matrix
/// reads "static arms, then the controller that picks among them".
const ARSENAL: [PrefetchSetup; 5] = [
    PrefetchSetup::Hw8x8,
    PrefetchSetup::HwNextLine,
    PrefetchSetup::HwAdaptiveNextLine,
    PrefetchSetup::HwDelta,
    PrefetchSetup::Policy,
];

/// `tdo compare --arms <all|list>`: the full arm × workload matrix over the
/// paper's 14-benchmark suite plus the phase-shifting workload, with a
/// "which arm wins where" summary. Extends the paper's Figure 2 (stream
/// buffers per benchmark) to the whole arsenal.
fn cmd_compare_arms(spec_arg: &str, o: &Opts) -> Result<ExitCode, String> {
    let arms: Vec<PrefetchSetup> = if spec_arg == "all" {
        ARSENAL.to_vec()
    } else {
        spec_arg
            .split(',')
            .map(|n| PrefetchSetup::from_cli_name(n).ok_or_else(|| format!("unknown arm `{n}`")))
            .collect::<Result<_, _>>()?
    };
    if arms.is_empty() {
        return Err("--arms needs at least one arm".into());
    }
    let workloads: Vec<&str> = names().iter().copied().chain(["phaseshift"]).collect();

    let cfg_for = |arm: PrefetchSetup| {
        let mut cfg = config(o, arm);
        if o.quick {
            cfg.measure_insts = cfg.measure_insts.min(120_000);
        }
        cfg
    };

    // One spec with every cell: the engine fans out across `--jobs`
    // workers; the per-cell reads below are then all memo hits, so the
    // rendered bytes cannot depend on the worker count.
    let runner = runner(o);
    let mut spec = ExperimentSpec::new();
    for w in &workloads {
        for &arm in &arms {
            spec.push(Cell::new(*w, scale(o), cfg_for(arm)));
        }
    }
    let _ = runner.run_spec(&spec);

    let mut rep = Report::new("arm-matrix").key("workload", 10);
    for &arm in &arms {
        rep = rep.col(arm.cli_name(), 10);
    }
    rep = rep.col("best", 8).rule(0);

    // Per-workload IPC row + best (highest-IPC) arm; ties go to the
    // earlier arm in the sweep order, deterministically.
    let mut wins: Vec<(PrefetchSetup, Vec<&str>)> = arms.iter().map(|&a| (a, Vec::new())).collect();
    for w in &workloads {
        let results: Vec<std::sync::Arc<SimResult>> = arms
            .iter()
            .map(|&arm| runner.run_cell(&Cell::new(*w, scale(o), cfg_for(arm))))
            .collect();
        let ipc_key = |i: usize| (results[i].orig_insts * 100_000).checked_div(results[i].cycles);
        let mut best = 0;
        for i in 1..arms.len() {
            if ipc_key(i) > ipc_key(best) {
                best = i;
            }
        }
        wins[best].1.push(w);
        let mut cells: Vec<String> = results.iter().map(|r| format!("{:.4}", r.ipc())).collect();
        cells.push(arms[best].cli_name().to_string());
        rep.row((*w).to_string(), cells);
    }
    print!("{}", rep.render(o.format));

    if o.format == Format::Table {
        println!();
        println!("which arm wins where:");
        for (arm, won) in &wins {
            if !won.is_empty() {
                println!("  {:<8} {:>2} workloads: {}", arm.cli_name(), won.len(), won.join(" "));
            }
        }
    }
    store_footer(&runner);
    Ok(ExitCode::SUCCESS)
}

fn cmd_disasm(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    for (i, word) in w.program.code.iter().enumerate() {
        let pc = w.program.code_base + i as u64 * INST_BYTES;
        match decode(*word) {
            Ok(inst) => println!("{pc:#10x}  {inst}"),
            Err(e) => println!("{pc:#10x}  <invalid: {e}>"),
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_traces(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    let machine = Machine::new(&w, config(o, o.arm));
    let mut dumped = false;
    let r = machine.run_with_inspect(&mut |m| {
        for id in m.installed_traces() {
            let Some(t) = m.trident().trace(id) else { continue };
            println!(
                "trace {:?} @ {:#x}  (head {:#x}, {} insts{})",
                id,
                t.cc_addr,
                t.head,
                t.insts.len(),
                if t.is_loop { ", loop" } else { "" }
            );
            for (i, ti) in t.insts.iter().enumerate() {
                let mark = if ti.synthetic { "  <- inserted" } else { "" };
                match ti.op {
                    TraceOp::Real(inst) => println!("  [{i:>3}] {inst}{mark}"),
                    TraceOp::CondExit { cond, ra, to } => {
                        println!("  [{i:>3}] exit-if {cond:?} {ra} -> {to:#x}")
                    }
                    TraceOp::JumpBack { to } => println!("  [{i:>3}] jump-back -> {to:#x}"),
                    TraceOp::LoopBack => println!("  [{i:>3}] loop-back"),
                }
            }
            dumped = true;
        }
    });
    if !dumped {
        println!("(no traces installed)");
    }
    if o.format == Format::Table {
        println!();
        report(&r);
    } else {
        print!("{}", metrics_report(name, o.arm, &r).render(o.format));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_timeline(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    let mut cfg = config(o, o.arm);
    if o.quick {
        cfg.measure_insts = cfg.measure_insts.min(100_000);
    }
    // A timeline run is one machine on one thread: `--jobs` cannot change a
    // single cell's execution, so the emitted bytes are identical for any
    // worker count.
    let (r, recorder) = run_traced(&w, &cfg);
    let timeline = Timeline::from_events(recorder.events());

    if let Some(path) = &o.jsonl_out {
        std::fs::write(path, recorder.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {} events to {path}", recorder.len());
    }
    if let Some(path) = &o.trace_out {
        std::fs::write(path, recorder.to_chrome_trace())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (load in about:tracing or Perfetto)");
    }

    println!(
        "{name} under {:?} ({}): repair convergence",
        o.arm,
        if o.full { "full scale" } else { "test scale" }
    );
    print!("{}", timeline.render_convergence());
    println!();
    println!("windowed performance (every {} insts):", cfg.sample_insts);
    print!("{}", timeline.render_samples());
    // The arm section only exists for policy runs: static-arm timelines
    // stay byte-identical to what they printed before the arsenal existed.
    if !timeline.arm_switches.is_empty() {
        println!();
        println!("policy arm switches:");
        print!("{}", timeline.render_arms());
    }
    println!();
    report(&r);
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace_validate(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // Every plane this repo emits is validated through the same verb; the
    // format is recognized by its first bytes.
    let what = if text.starts_with("{\"traceEvents\":[") {
        let n = validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid Chrome trace ({n} entries)")
    } else if text.starts_with("{\"trace\":") {
        let n = tdo_obs::validate_flight(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid flight-recorder dump ({n} records)")
    } else if text.starts_with("ts=") {
        let n = tdo_obs::validate_log(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid structured log ({n} lines)")
    } else {
        let n = validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid JSONL event log ({n} events)")
    };
    println!("{path}: {what}");
    Ok(ExitCode::SUCCESS)
}

/// `tdo flight <dump>`: validate a flight-recorder dump and render it as
/// one span tree per trace, with integer-µs timings.
fn cmd_flight(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // Decode the integer payloads whose meaning lives in other crates:
    // fault points carry a `Site::ALL` index, dump points a trigger index,
    // coalesce points the leader's trace id.
    let resolve = |kind: tdo_obs::FlightKind, arg: u64| -> Option<String> {
        match kind {
            tdo_obs::FlightKind::Fault => {
                tdo_fault::Site::ALL.get(arg as usize).map(|s| format!("site={}", s.name()))
            }
            tdo_obs::FlightKind::Dump => {
                tdo_server::DUMP_REASONS.get(arg as usize).map(|r| format!("reason={r}"))
            }
            tdo_obs::FlightKind::Coalesce => Some(format!("leader={arg:016x}")),
            _ => None,
        }
    };
    let rendered = tdo_obs::render_flight(&text, &resolve).map_err(|e| format!("{path}: {e}"))?;
    print!("{rendered}");
    Ok(ExitCode::SUCCESS)
}

/// `tdo serve`: the result-serving daemon (see `tdo-server`).
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                cfg.workers = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
            }
            "--queue" => {
                let v = it.next().ok_or("--queue needs a value")?;
                cfg.queue_cap = v.parse().map_err(|_| format!("bad --queue `{v}`"))?;
            }
            "--store-dir" => {
                cfg.store_dir = Some(it.next().ok_or("--store-dir needs a directory")?.clone());
            }
            "--no-store" => cfg.no_store = true,
            "--slo-us" => {
                let v = it.next().ok_or("--slo-us needs a value")?;
                cfg.slo_us = v.parse().map_err(|_| format!("bad --slo-us `{v}`"))?;
            }
            "--flight-dir" => {
                cfg.flight_dir = Some(it.next().ok_or("--flight-dir needs a directory")?.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if let Some(dir) = &cfg.flight_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create --flight-dir `{dir}`: {e}"))?;
    }
    install_sigint_handler();
    let server = Server::bind(&cfg).map_err(|e| format!("cannot bind `{}`: {e}", cfg.addr))?;
    let addr = server.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    println!(
        "tdo serve: listening on http://{addr} (workers={}, queue={})",
        cfg.workers.max(1),
        cfg.queue_cap.max(1)
    );
    let _ = std::io::stdout().flush(); // daemon spawners wait for this line
    server.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!("tdo serve: shut down cleanly");
    store_footer(server.runner());
    Ok(ExitCode::SUCCESS)
}

/// `tdo store <stats|verify|gc>`: persistent-store maintenance.
fn cmd_store(args: &[String]) -> Result<ExitCode, String> {
    let Some(action) = args.first() else {
        return Err("store needs an action: stats, verify or gc".into());
    };
    if !matches!(action.as_str(), "stats" | "verify" | "gc") {
        return Err(format!("unknown store action `{action}` (want stats, verify or gc)"));
    }
    let mut store_dir: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store-dir" => {
                store_dir = Some(it.next().ok_or("--store-dir needs a directory")?.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let dir = Store::resolve_dir(store_dir.as_deref());
    let store =
        Store::open(&dir).map_err(|e| format!("cannot open store `{}`: {e}", dir.display()))?;
    match action.as_str() {
        "stats" => {
            let s = store.stats();
            println!("store {}", dir.display());
            println!("  live records       {}", s.live_records);
            println!("  shadowed records   {}", s.shadowed_records);
            println!("  log bytes          {}", s.log_bytes);
            println!("  quarantine bytes   {}", s.quarantine_bytes);
            println!("  quarantined (run)  {}", s.quarantined);
            println!("  schema version     {SCHEMA_VERSION}");
            let sz = store.size_stats();
            if !sz.per_generation.is_empty() {
                println!();
                let mut rep = Report::new("generations")
                    .key("generation", 12)
                    .col("records", 9)
                    .col("bytes", 12)
                    .rule(0);
                for g in &sz.per_generation {
                    rep.row(
                        format!("v{}", g.version),
                        [g.records.to_string(), g.bytes.to_string()],
                    );
                }
                print!("{}", rep.render(Format::Table));
                let h = &sz.record_bytes;
                println!("  record bytes       mean {} over {} records", h.mean(), h.count);
                let mut cum = 0u64;
                for (i, n) in h.buckets.iter().enumerate() {
                    cum += n;
                    if *n == 0 {
                        continue;
                    }
                    match tdo_metrics::Histogram::bucket_le(i) {
                        Some(le) => println!("    <= {le:>10} B   {cum}"),
                        None => println!("    <=        inf B   {cum}"),
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let report = store.verify().map_err(|e| format!("verify: {e}"))?;
            println!(
                "store {}: {} good, {} corrupt, {} trailing garbage bytes",
                dir.display(),
                report.good,
                report.corrupt,
                report.trailing_garbage_bytes
            );
            Ok(if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        "gc" => {
            let report = store.gc(SCHEMA_VERSION).map_err(|e| format!("gc: {e}"))?;
            println!(
                "store {}: kept {}, dropped {} stale + {} shadowed, {} -> {} bytes",
                dir.display(),
                report.kept,
                report.dropped_stale,
                report.dropped_shadowed,
                report.bytes_before,
                report.bytes_after
            );
            Ok(ExitCode::SUCCESS)
        }
        _ => unreachable!("action validated above"),
    }
}

/// `tdo ping <addr>`: the in-repo HTTP client (CI has no curl).
fn cmd_ping(args: &[String]) -> Result<ExitCode, String> {
    let Some(addr) = args.first() else {
        return Err("ping needs a server address (host:port)".into());
    };
    let mut path: Option<String> = None;
    let mut run_workload: Option<String> = None;
    let mut arm = PrefetchSetup::SwSelfRepair;
    let mut full = false;
    let mut insts: Option<u64> = None;
    let mut shutdown = false;
    let mut prom = false;
    let mut count: u32 = 1;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--path" => path = Some(it.next().ok_or("--path needs a path")?.clone()),
            "--metrics" => path = Some("/metrics".into()),
            "--prom" => prom = true,
            "--workloads" => path = Some("/workloads".into()),
            "--count" => {
                let v = it.next().ok_or("--count needs a value")?;
                count = v.parse().map_err(|_| format!("bad --count `{v}`"))?;
                if count == 0 {
                    return Err("--count must be at least 1".into());
                }
            }
            "--run" => {
                run_workload = Some(it.next().ok_or("--run needs a workload name")?.clone());
            }
            "--arm" => {
                let v = it.next().ok_or("--arm needs a value")?;
                arm =
                    PrefetchSetup::from_cli_name(v).ok_or_else(|| format!("unknown arm `{v}`"))?;
            }
            "--full" => full = true,
            "--insts" => {
                let v = it.next().ok_or("--insts needs a value")?;
                insts = Some(v.parse().map_err(|_| format!("bad --insts `{v}`"))?);
            }
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if shutdown || run_workload.is_some() {
        // One-shot POST modes; --count applies to the GET pings only.
        let response = if shutdown {
            client::post(addr, "/shutdown", "")
        } else {
            let workload = run_workload.expect("checked above");
            let mut body = format!(
                "{{\"workload\":\"{workload}\",\"arm\":\"{}\",\"scale\":\"{}\"",
                arm.cli_name(),
                if full { "full" } else { "test" }
            );
            if let Some(n) = insts {
                body.push_str(&format!(",\"insts\":{n}"));
            }
            body.push('}');
            client::post(addr, "/run", &body)
        };
        let response = response.map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
        println!("{}", response.body);
        return if response.ok() {
            Ok(ExitCode::SUCCESS)
        } else {
            Err(format!("server answered HTTP {}", response.status))
        };
    }

    // GET modes: `--count N` repeats the request and reports round-trip
    // times in integer microseconds.
    let get_path = if prom {
        "/metrics?format=prom".to_string()
    } else {
        path.unwrap_or_else(|| "/health".into())
    };
    let mut rtts_us: Vec<u64> = Vec::with_capacity(count as usize);
    let mut response = None;
    for _ in 0..count {
        let t0 = std::time::Instant::now();
        let r = client::get(addr, &get_path).map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
        rtts_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        response = Some(r);
    }
    let response = response.expect("count >= 1");
    println!("{}", response.body);
    let (min, max) = (rtts_us.iter().min(), rtts_us.iter().max());
    let avg = rtts_us.iter().sum::<u64>() / rtts_us.len() as u64;
    println!(
        "rtt_us min={} avg={avg} max={} ({count} pings)",
        min.expect("nonempty"),
        max.expect("nonempty")
    );
    if prom {
        let stats = tdo_metrics::expo::parse_text(&response.body)
            .map_err(|e| format!("prom exposition invalid: {e}"))?;
        // The observability plane must actually be wired into the daemon's
        // exposition — a scrape missing these families means the trace/log/
        // flight layer fell off the registry.
        for family in [
            "tdo_obs_flight_recorded_total",
            "tdo_obs_flight_overwritten_total",
            "tdo_obs_flight_dropped_total",
            "tdo_obs_log_lines_total",
            "tdo_server_bad_requests_total",
            "tdo_server_flight_dumps_total",
            "tdo_watchdog_trips_total",
            "tdo_build_info",
            "tdo_server_uptime_ticks",
        ] {
            if !response.body.contains(family) {
                return Err(format!("prom exposition is missing the `{family}` family"));
            }
        }
        println!("prom: {} families, {} samples, exposition valid", stats.families, stats.samples);
    }
    if response.ok() {
        Ok(ExitCode::SUCCESS)
    } else {
        Err(format!("server answered HTTP {}", response.status))
    }
}

/// A parsed `/metrics/history` response: the fixed column schema plus the
/// retained `(tick, values)` rows, oldest first.
struct History {
    columns: Vec<String>,
    kinds: Vec<String>,
    rows: Vec<(u64, Vec<u64>)>,
}

/// Extracts `"key":["a","b",...]` from a JSON line, unescaping `\"`/`\\`.
fn json_str_array(line: &str, key: &str) -> Option<Vec<String>> {
    let at = line.find(&format!("\"{key}\":["))? + key.len() + 4;
    let mut out = Vec::new();
    let mut chars = line[at..].chars();
    loop {
        match chars.next()? {
            ']' => return Some(out),
            '"' => {
                let mut cur = String::new();
                loop {
                    match chars.next()? {
                        '\\' => cur.push(chars.next()?),
                        '"' => break,
                        c => cur.push(c),
                    }
                }
                out.push(cur);
            }
            ',' | ' ' => {}
            _ => return None,
        }
    }
}

/// Extracts `"key":[1,2,...]` from a JSON line.
fn json_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let start = line.find(&format!("\"{key}\":["))? + key.len() + 4;
    let end = start + line[start..].find(']')?;
    let body = line[start..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|t| t.trim().parse().ok()).collect()
}

/// Extracts `"key":123` from a JSON line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
    let digits: String = line[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses the `/metrics/history` JSONL body (header line + one line per
/// retained row).
fn parse_history(text: &str) -> Result<History, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty history response")?;
    let schema = json_u64(header, "series_schema").ok_or("history header lacks series_schema")?;
    if schema != tdo_metrics::series::SERIES_SCHEMA_VERSION {
        return Err(format!("unsupported series schema v{schema}"));
    }
    let columns = json_str_array(header, "columns").ok_or("history header lacks columns")?;
    let kinds = json_str_array(header, "kinds").ok_or("history header lacks kinds")?;
    if kinds.len() != columns.len() {
        return Err("history header kinds/columns length mismatch".into());
    }
    let mut rows = Vec::new();
    for line in lines {
        let tick = json_u64(line, "tick").ok_or_else(|| format!("bad history row: {line}"))?;
        let values =
            json_u64_array(line, "values").ok_or_else(|| format!("bad history row: {line}"))?;
        if values.len() != columns.len() {
            return Err(format!("history row width {} != schema {}", values.len(), columns.len()));
        }
        rows.push((tick, values));
    }
    Ok(History { columns, kinds, rows })
}

/// Renders one `tdo top` frame from a history snapshot. Pure over its
/// inputs, so the table is deterministic for a fixed history (the golden
/// test feeds a synthetic one).
///
/// The `total` column is the last retained sample (counters: since server
/// start; gauges: current). The `window` column differences the first and
/// last retained rows — "what happened across the scrape window" — and is
/// `-` for gauges.
fn render_top(h: &History, format: Format) -> String {
    let mut out = String::new();
    let span = match (h.rows.first(), h.rows.last()) {
        (Some(first), Some(last)) => last.0 - first.0,
        _ => 0,
    };
    if format == Format::Table {
        out.push_str(&format!("health plane: {} rows retained, span {span} ticks\n", h.rows.len()));
    }
    let Some(last) = h.rows.last() else {
        if format == Format::Table {
            out.push_str("(no samples retained yet — drive some traffic and re-poll)\n");
        }
        return out;
    };
    let first = h.rows.first().expect("rows nonempty");
    let col = |name: &str| h.columns.iter().position(|c| c == name);
    let total = |name: &str| col(name).map_or(0, |i| last.1[i]);
    // Counters difference across the window; gauges have no meaningful
    // delta, so their window cell stays blank.
    let window_at = |i: usize| {
        if h.kinds.get(i).is_some_and(|k| k == "gauge") {
            "-".to_string()
        } else {
            last.1[i].saturating_sub(first.1[i]).to_string()
        }
    };
    let window = |name: &str| col(name).map_or_else(|| "0".to_string(), window_at);

    // Run-latency quantiles from the log2 histogram's cumulative buckets:
    // `total` over everything observed, `window` over the scrape window
    // (bucket-wise counter difference).
    let lat_prefix = "tdo_server_request_latency_us{endpoint=\"run\"}#b";
    let mut cum_total = [0u64; tdo_metrics::TOTAL_BUCKETS];
    let mut cum_window = [0u64; tdo_metrics::TOTAL_BUCKETS];
    for (i, name) in h.columns.iter().enumerate() {
        if let Some(b) = name.strip_prefix(lat_prefix).and_then(|t| t.parse::<usize>().ok()) {
            if b < tdo_metrics::TOTAL_BUCKETS {
                cum_total[b] = last.1[i];
                cum_window[b] = last.1[i].saturating_sub(first.1[i]);
            }
        }
    }
    let quantile = |cum: &[u64; tdo_metrics::TOTAL_BUCKETS], q_milli: u64| {
        let buckets = tdo_metrics::series::buckets_from_cumulative(cum);
        tdo_metrics::quantile_from_buckets(&buckets, q_milli)
    };

    // Labeled families rendered one row per label, sorted by column name so
    // the frame never depends on the server's registration order.
    let labeled = |prefix: &str| {
        let mut rows: Vec<(String, usize)> = h
            .columns
            .iter()
            .enumerate()
            .filter_map(|(i, name)| {
                let label = name.strip_prefix(prefix)?.strip_suffix("\"}")?;
                Some((label.to_string(), i))
            })
            .collect();
        rows.sort();
        rows
    };

    let mut rep = Report::new("top").key("metric", 24).col("total", 12).col("window", 12).rule(0);
    rep.row("span_ticks", [last.0.to_string(), span.to_string()]);
    let runs = "tdo_server_endpoint_requests_total{endpoint=\"run\"}";
    rep.row("runs", [total(runs).to_string(), window(runs)]);
    for (name, q) in [("run_p50_us", 500), ("run_p95_us", 950), ("run_p99_us", 990)] {
        rep.row(name, [quantile(&cum_total, q).to_string(), quantile(&cum_window, q).to_string()]);
    }
    for (name, family) in [
        ("queue_depth", "tdo_server_queue_depth"),
        ("queue_cap", "tdo_server_queue_cap"),
        ("shed", "tdo_server_shed_total"),
        ("run_failed", "tdo_server_run_failed_total"),
        ("sims", "tdo_sim_sims_total"),
        ("arm_switches", "tdo_arm_switches_total"),
    ] {
        rep.row(name, [total(family).to_string(), window(family)]);
    }
    for (prefix, label_prefix) in [
        ("dump", "tdo_server_flight_dumps_total{reason=\""),
        ("arm_issued", "tdo_prefetch_issued_total{arm=\""),
        ("watchdog", "tdo_watchdog_trips_total{rule=\""),
    ] {
        for (label, i) in labeled(label_prefix) {
            rep.row(format!("{prefix}:{label}"), [last.1[i].to_string(), window_at(i)]);
        }
    }
    out.push_str(&rep.render(format));
    out
}

/// `tdo top <addr>`: the live health dashboard — poll `/metrics/history`,
/// render a frame, repeat (or `--once` for a single deterministic frame).
fn cmd_top(args: &[String]) -> Result<ExitCode, String> {
    let addr = match args.first() {
        Some(a) if !a.starts_with("--") => a.clone(),
        _ => return Err("top needs a server address (host:port)".into()),
    };
    let mut once = false;
    let mut window: usize = 0;
    let mut interval_ms: u64 = 1000;
    let mut format = Format::Table;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--once" => once = true,
            "--window" => {
                let v = it.next().ok_or("--window needs a value")?;
                window = v.parse().map_err(|_| format!("bad --window `{v}`"))?;
            }
            "--interval-ms" => {
                let v = it.next().ok_or("--interval-ms needs a value")?;
                interval_ms = v.parse().map_err(|_| format!("bad --interval-ms `{v}`"))?;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = v.parse()?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    loop {
        let resp = client::get(&addr, &format!("/metrics/history?window={window}"))
            .map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
        if !resp.ok() {
            return Err(format!("server answered HTTP {}", resp.status));
        }
        let frame = render_top(&parse_history(&resp.body)?, format);
        if once {
            print!("{frame}");
            return Ok(ExitCode::SUCCESS);
        }
        // Live mode: redraw in place on a terminal, append frames in a pipe.
        if std::io::stdout().is_terminal() {
            print!("\x1b[2J\x1b[H{frame}");
        } else {
            println!("{frame}");
        }
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

/// The display name of a policy candidate index in ledger records.
fn candidate_name(idx: u64) -> String {
    policy_candidates()
        .get(idx as usize)
        .and_then(|c| c.kind())
        .map_or_else(|| format!("arm{idx}"), |k| k.name().to_string())
}

/// `tdo why <workload>`: narrate the run's decision-audit ledger — every
/// distance repair under `--arm` and every policy arm switch, each with the
/// windowed evidence that justified it.
fn cmd_why(name: &str, o: &Opts) -> Result<ExitCode, String> {
    load_workload(name, o.full)?;
    let runner = runner(o);
    let r = runner.run_cell(&Cell::new(name, scale(o), config(o, o.arm)));
    // Arm switches only exist under the policy controller; unless --arm
    // already asked for it, run the policy cell too (memoized/store-backed,
    // so a warm store simulates nothing).
    let policy = if o.arm == PrefetchSetup::Policy {
        r.clone()
    } else {
        runner.run_cell(&Cell::new(name, scale(o), config(o, PrefetchSetup::Policy)))
    };
    store_footer(&runner);

    let repairs: Vec<_> =
        r.ledger.iter().filter(|rec| rec.kind == tdo_core::LedgerKind::Repair).collect();
    let switches: Vec<_> =
        policy.ledger.iter().filter(|rec| rec.kind == tdo_core::LedgerKind::ArmSwitch).collect();

    if o.format != Format::Table {
        // Machine-readable: the raw records, one row each (CI artifacts).
        let mut rep = Report::new("why")
            .key("kind", 12)
            .col("cycle", 12)
            .col("group", 12)
            .col("pc", 12)
            .col("old", 10)
            .col("new", 10)
            .col("evidence_a", 12)
            .col("evidence_b", 12)
            .col("margin", 8)
            .col("epoch", 8)
            .rule(0);
        for rec in repairs.iter().chain(switches.iter()) {
            let (old, new) = if rec.kind == tdo_core::LedgerKind::Repair {
                (rec.old.to_string(), rec.new.to_string())
            } else {
                (candidate_name(rec.old), candidate_name(rec.new))
            };
            rep.row(
                if rec.kind == tdo_core::LedgerKind::Repair { "repair" } else { "arm_switch" },
                [
                    rec.cycle.to_string(),
                    format!("{:#x}", rec.group),
                    format!("{:#x}", rec.pc),
                    old,
                    new,
                    rec.evidence_a.to_string(),
                    rec.evidence_b.to_string(),
                    rec.margin_milli.to_string(),
                    rec.epoch.to_string(),
                ],
            );
        }
        print!("{}", rep.render(o.format));
        return Ok(ExitCode::SUCCESS);
    }

    println!("{name} decision audit ({}):", if o.full { "full scale" } else { "test scale" });
    println!();
    println!(
        "distance repairs under {:?}: {} recorded, {} retained",
        o.arm,
        r.optimizer.repairs,
        repairs.len()
    );
    for rec in &repairs {
        println!(
            "  cycle {:>9}  group {:#x} pc {:#x}  distance {} -> {}  \
             avg access {}.{:02}c (prev {}.{:02}c)  tolerance {}m  budget left {}",
            rec.cycle,
            rec.group,
            rec.pc,
            rec.old,
            rec.new,
            rec.evidence_a / 100,
            rec.evidence_a % 100,
            rec.evidence_b / 100,
            rec.evidence_b % 100,
            rec.margin_milli,
            rec.epoch
        );
    }
    if repairs.is_empty() {
        println!("  (none — every prefetch distance stayed where it started)");
    }
    println!();
    println!(
        "policy arm switches: {} recorded, {} retained",
        policy.mem.arm_switches,
        switches.len()
    );
    for rec in &switches {
        println!(
            "  cycle {:>9}  epoch {:>3}  {} -> {}  ipc {}.{:03}  mpki {}.{:03}  margin {}m",
            rec.cycle,
            rec.epoch,
            candidate_name(rec.old),
            candidate_name(rec.new),
            rec.evidence_a / 1000,
            rec.evidence_a % 1000,
            rec.evidence_b / 1000,
            rec.evidence_b % 1000,
            rec.margin_milli
        );
    }
    if switches.is_empty() {
        println!("  (none — the controller held one arm for the whole run)");
    }
    Ok(ExitCode::SUCCESS)
}

/// `tdo perf`: the throughput-baseline pipeline (see `tdo_bench::perf`).
fn cmd_perf(args: &[String]) -> Result<ExitCode, String> {
    // Like run/compare, the CLI reads through the persistent store unless
    // `--no-store` asks otherwise (the programmatic default is storeless).
    let mut o = tdo_bench::perf::PerfOpts { no_store: false, ..Default::default() };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--no-store" => o.no_store = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
            }
            "--insts" => {
                let v = it.next().ok_or("--insts needs a value")?;
                o.insts = Some(v.parse().map_err(|_| format!("bad --insts `{v}`"))?);
            }
            "--out" => o.out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--check" => o.check = Some(it.next().ok_or("--check needs a path")?.clone()),
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                o.tolerance = v.parse().map_err(|_| format!("bad --tolerance `{v}`"))?;
                if o.tolerance > 100 {
                    return Err("--tolerance is a percentage (0-100)".into());
                }
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                o.format = v.parse()?;
            }
            "--store-dir" => {
                o.store_dir = Some(it.next().ok_or("--store-dir needs a directory")?.clone());
                o.no_store = false;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let outcome = tdo_bench::perf::measure(&o);
    print!("{}", outcome.table);
    if let Some(summary) = &outcome.store_summary {
        eprintln!("{summary}");
    }
    if let Some(path) = &o.out {
        std::fs::write(path, &outcome.json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote baseline to {path}");
    }
    if let Some(path) = &o.check {
        let baseline =
            std::fs::read_to_string(path).map_err(|e| format!("read baseline {path}: {e}"))?;
        // Attribution first, verdict second: when the gate fails, the table
        // saying *which phase* regressed is the part worth reading.
        print!("{}", tdo_bench::perf::phase_delta_table(&baseline, &outcome.json));
        let verdict =
            tdo_bench::perf::check_against(&baseline, outcome.insts_per_sec, o.tolerance)?;
        println!("{verdict}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `tdo chaos`: the deterministic fault-injection sweep (see
/// `tdo_bench::chaos`). Exits nonzero when any chaos invariant is violated.
fn cmd_chaos(args: &[String]) -> Result<ExitCode, String> {
    let mut o = tdo_bench::chaos::ChaosOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                o.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
            }
            "--summary-out" => {
                o.summary_out = Some(it.next().ok_or("--summary-out needs a path")?.clone());
            }
            "--flight-out" => {
                o.flight_out = Some(it.next().ok_or("--flight-out needs a path")?.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let outcome = tdo_bench::chaos::run(&o);
    print!("{}", outcome.report);
    if let Some(path) = &o.summary_out {
        std::fs::write(path, &outcome.coverage_text).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote fault-site coverage to {path}");
    }
    if let Some(path) = &o.flight_out {
        std::fs::write(path, &outcome.flight_dump).map_err(|e| format!("write {path}: {e}"))?;
        let log_path = format!("{path}.log");
        std::fs::write(&log_path, &outcome.flight_log)
            .map_err(|e| format!("write {log_path}: {e}"))?;
        eprintln!("wrote flight dump to {path} (+ {log_path})");
    }
    Ok(if outcome.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// Routes one command. Every arm here must be listed in [`COMMANDS`] (and
/// therefore in the usage text) — a unit test enforces it.
fn dispatch(cmd: &str, args: &[String]) -> Result<ExitCode, String> {
    match cmd {
        "list" => Ok(cmd_list()),
        "trace-validate" => {
            let Some(path) = args.first() else {
                return Err("trace-validate needs a file path".into());
            };
            cmd_trace_validate(path)
        }
        "flight" => {
            let Some(path) = args.first() else {
                return Err("flight needs a dump file path".into());
            };
            cmd_flight(path)
        }
        "serve" => cmd_serve(args),
        "store" => cmd_store(args),
        "ping" => cmd_ping(args),
        "top" => cmd_top(args),
        "perf" => cmd_perf(args),
        "chaos" => cmd_chaos(args),
        "run" | "compare" | "disasm" | "traces" | "timeline" | "why" => {
            // `compare --arms <all|list>` sweeps the whole suite and takes
            // no workload argument.
            if cmd == "compare" && args.first().is_some_and(|a| a.starts_with("--")) {
                let opts = parse_opts(args)?;
                let spec = opts.arms.clone().ok_or("compare needs a workload name (or --arms)")?;
                return cmd_compare_arms(&spec, &opts);
            }
            let Some(name) = args.first() else {
                return Err(format!("{cmd} needs a workload name"));
            };
            let opts = parse_opts(&args[1..])?;
            if cmd == "compare" && opts.arms.is_some() {
                return Err("--arms replaces the workload argument: `tdo compare --arms …`".into());
            }
            match cmd {
                "run" => cmd_run(name, &opts),
                "compare" => cmd_compare(name, &opts),
                "disasm" => cmd_disasm(name, &opts),
                "timeline" => cmd_timeline(name, &opts),
                "why" => cmd_why(name, &opts),
                _ => cmd_traces(name, &opts),
            }
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match dispatch(cmd, &args[1..]) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite guarantee: the help text cannot drift from the dispatcher.
    /// Every dispatched subcommand string appears in `usage()`, and every
    /// documented command is actually dispatched (a bogus flag produces a
    /// per-command error, never `unknown command`).
    #[test]
    fn every_command_is_documented_and_dispatched() {
        let text = usage_text();
        for (name, summary) in COMMANDS {
            assert!(
                text.lines().any(|l| l.trim_start().starts_with(name)),
                "usage() does not document `{name}`"
            );
            assert!(!summary.is_empty(), "`{name}` needs a summary");
            let err =
                dispatch(name, &["--definitely-not-a-flag".to_string()]).err().unwrap_or_default();
            assert!(
                !err.starts_with("unknown command"),
                "documented command `{name}` is not dispatched"
            );
        }
        assert!(
            dispatch("definitely-not-a-command", &[]).unwrap_err().starts_with("unknown command"),
            "the dispatcher must reject unknown commands"
        );
    }

    /// Arm names accepted by `--arm` round-trip through the shared mapping.
    #[test]
    fn arm_names_round_trip() {
        for setup in PrefetchSetup::ALL {
            assert_eq!(PrefetchSetup::from_cli_name(setup.cli_name()), Some(setup));
        }
        assert_eq!(PrefetchSetup::from_cli_name("warp-drive"), None);
        assert!(
            usage_text().contains("none|hw4x4|hw8x8|basic|whole|sr|swonly|nl|adanl|delta|policy")
        );
    }

    /// A synthetic two-row history covering every family `tdo top` reads:
    /// the same shape `/metrics/history` serves, built deterministically.
    fn fixture_history() -> History {
        let lat = "tdo_server_request_latency_us{endpoint=\"run\"}";
        // Window 1: two requests at ≤1024 µs (b10), two at ≤4096 µs (b12).
        // Window 2 adds four more at ≤16384 µs (b14).
        let mut counts1 = [0u64; tdo_metrics::TOTAL_BUCKETS];
        counts1[10] = 2;
        counts1[12] = 2;
        let mut counts2 = counts1;
        counts2[14] += 4;
        let cum = |c: &[u64; tdo_metrics::TOTAL_BUCKETS], i: usize| c[..=i].iter().sum::<u64>();

        let mut spec: Vec<(String, &str, u64, u64)> = vec![
            ("tdo_server_endpoint_requests_total{endpoint=\"run\"}".into(), "counter", 4, 8),
            ("tdo_server_queue_depth".into(), "gauge", 3, 1),
            ("tdo_server_queue_cap".into(), "gauge", 16, 16),
            ("tdo_server_shed_total".into(), "counter", 0, 2),
            ("tdo_server_run_failed_total".into(), "counter", 0, 0),
            ("tdo_sim_sims_total".into(), "counter", 4, 8),
            ("tdo_arm_switches_total".into(), "counter", 1, 3),
            ("tdo_server_flight_dumps_total{reason=\"slo_burn\"}".into(), "counter", 0, 1),
            ("tdo_prefetch_issued_total{arm=\"nextline\"}".into(), "counter", 120, 250),
            ("tdo_prefetch_issued_total{arm=\"stream\"}".into(), "counter", 638, 638),
            ("tdo_watchdog_trips_total{rule=\"queue_depth\"}".into(), "counter", 0, 0),
            ("tdo_watchdog_trips_total{rule=\"slo_burn\"}".into(), "counter", 0, 1),
        ];
        for i in 0..tdo_metrics::TOTAL_BUCKETS {
            spec.push((format!("{lat}#b{i}"), "counter", cum(&counts1, i), cum(&counts2, i)));
        }
        spec.push((format!("{lat}#sum"), "counter", 7_000, 48_000));
        spec.push((format!("{lat}#count"), "counter", 4, 8));
        History {
            columns: spec.iter().map(|(n, ..)| n.clone()).collect(),
            kinds: spec.iter().map(|(_, k, ..)| (*k).to_string()).collect(),
            rows: vec![
                (40, spec.iter().map(|&(_, _, a, _)| a).collect()),
                (55, spec.iter().map(|&(_, _, _, b)| b).collect()),
            ],
        }
    }

    /// The `tdo top --once --format table` frame for a fixed history is
    /// byte-pinned. Regenerate with
    /// `TDO_BLESS=1 cargo test -p tdo-cli top_frame`.
    #[test]
    fn top_frame_matches_golden_snapshot() {
        let frame = render_top(&fixture_history(), Format::Table);
        let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/top_table.txt");
        if std::env::var_os("TDO_BLESS").is_some() {
            std::fs::write(golden, &frame).unwrap();
        } else {
            let expected = std::fs::read_to_string(golden)
                .expect("golden file missing; regenerate with TDO_BLESS=1");
            assert_eq!(
                frame, expected,
                "top frame drifted from the golden file; if intended, regenerate with TDO_BLESS=1"
            );
        }
        // The frame reads sanely regardless of the golden bytes.
        assert!(frame.contains("health plane: 2 rows retained, span 15 ticks"), "{frame}");
        assert!(frame.contains("run_p95_us"), "{frame}");
        assert!(frame.contains("arm_issued:stream"), "{frame}");
        assert!(frame.contains("watchdog:slo_burn"), "{frame}");
    }

    /// The history parser round-trips the exact JSONL shape
    /// `/metrics/history` emits, including escaped label quotes, and
    /// rejects structural damage.
    #[test]
    fn history_jsonl_parses_and_rejects_damage() {
        let text = concat!(
            "{\"series_schema\":1,\"rows\":2,\"columns\":[",
            "\"tdo_server_request_latency_us{endpoint=\\\"run\\\"}#count\",",
            "\"tdo_server_queue_depth\"],\"kinds\":[\"counter\",\"gauge\"]}\n",
            "{\"tick\":3,\"values\":[4,1]}\n",
            "{\"tick\":9,\"values\":[10,0]}\n",
        );
        let h = parse_history(text).expect("parses");
        assert_eq!(
            h.columns,
            ["tdo_server_request_latency_us{endpoint=\"run\"}#count", "tdo_server_queue_depth"]
        );
        assert_eq!(h.kinds, ["counter", "gauge"]);
        assert_eq!(h.rows, [(3, vec![4, 1]), (9, vec![10, 0])]);

        assert!(parse_history("").is_err(), "empty body");
        assert!(parse_history("{\"series_schema\":99,\"columns\":[],\"kinds\":[]}").is_err());
        let short_row = text.replace("[10,0]", "[10]");
        assert!(parse_history(&short_row).is_err(), "row width must match the schema");

        // An empty history (header only) renders a hint, not a panic.
        let empty = parse_history("{\"series_schema\":1,\"rows\":0,\"columns\":[],\"kinds\":[]}\n")
            .expect("parses");
        assert!(render_top(&empty, Format::Table).contains("no samples retained"));
    }

    /// Ledger candidate indices resolve to the arsenal's arm names.
    #[test]
    fn candidate_names_cover_the_policy_arsenal() {
        let names: Vec<String> =
            (0..policy_candidates().len() as u64).map(candidate_name).collect();
        assert_eq!(names, ["stream", "nextline", "adanl", "delta"]);
        assert_eq!(candidate_name(99), "arm99", "out-of-range indices stay renderable");
    }

    /// The `--arms all` arsenal is exactly the hardware arms plus the
    /// policy controller, and stays in sync with the setup enum.
    #[test]
    fn arsenal_covers_the_hardware_arms_and_policy() {
        assert_eq!(ARSENAL.last(), Some(&PrefetchSetup::Policy));
        for setup in ARSENAL {
            assert!(PrefetchSetup::ALL.contains(&setup));
        }
        assert!(usage_text().contains("--arms <all|a,b,...>"));
    }
}
