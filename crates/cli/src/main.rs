//! `tdo` — drive the self-repairing prefetcher stack from the command line.
//!
//! ```text
//! tdo list                         # workloads and their characterizations
//! tdo run mcf --arm sr --full      # one run, summary report
//! tdo compare art --jobs 4        # every arm side by side, in parallel
//! tdo disasm gap | head            # workload disassembly
//! tdo traces mcf --arm sr          # installed hot traces after a run
//! tdo timeline mcf --trace-out t.json   # repair convergence + event trace
//! tdo trace-validate t.json        # schema-check an emitted trace file
//! tdo serve --addr 127.0.0.1:7077  # result-serving daemon over the store
//! tdo store stats                  # persistent result-store maintenance
//! tdo ping 127.0.0.1:7077          # in-repo HTTP client (health/metrics/run)
//! ```
//!
//! `run` and `compare` execute through the shared experiment engine
//! ([`tdo_sim::Runner`]): `compare` simulates all arms across `--jobs`
//! worker threads, repeated cells within one invocation are memoized, and —
//! unless `--no-store` is given — results persist to the content-addressed
//! store (`--store-dir`, `$TDO_STORE`, default `.tdo-store/`), so repeat
//! invocations simulate nothing.

use std::io::Write as _;
use std::process::ExitCode;

use tdo_isa::{decode, INST_BYTES};
use tdo_obs::{validate_chrome_trace, validate_jsonl};
use tdo_server::{client, install_sigint_handler, Server, ServerConfig};
use tdo_sim::{
    run_traced, Cell, ExperimentSpec, Format, Machine, PrefetchSetup, Report, Runner, SimConfig,
    SimResult, Timeline, SCHEMA_VERSION,
};
use tdo_store::Store;
use tdo_trident::TraceOp;
use tdo_workloads::{build, names, Scale, Workload};

/// Every dispatched subcommand, with its one-line summary. The dispatcher
/// and the usage text are both driven by this table, and a unit test pins
/// every entry into [`usage_text`] so the help cannot drift from the code.
const COMMANDS: &[(&str, &str)] = &[
    ("list", "workloads and descriptions"),
    ("run", "simulate one workload: run <workload> [opts]"),
    ("compare", "simulate every arm: compare <workload> [opts]"),
    ("disasm", "dump the workload's code: disasm <workload>"),
    ("traces", "dump installed hot traces after a run: traces <workload> [opts]"),
    ("timeline", "cycle-stamped repair-convergence report: timeline <workload> [opts]"),
    ("trace-validate", "schema-check an emitted trace/flight/log file: trace-validate <file>"),
    ("flight", "render a flight-recorder dump as per-trace span trees: flight <dump>"),
    ("serve", "HTTP daemon serving results from the store: serve [opts]"),
    ("store", "persistent store maintenance: store <stats|verify|gc> [opts]"),
    ("ping", "HTTP client for a running daemon: ping <addr> [opts]"),
    ("perf", "throughput baseline + regression gate: perf [opts]"),
    ("chaos", "seeded fault-injection + crash-recovery sweep: chaos [opts]"),
];

fn usage_text() -> String {
    let mut text = String::from("usage: tdo <command> [args]\n\ncommands:\n");
    for (name, summary) in COMMANDS {
        text.push_str(&format!("  {name:<15} {summary}\n"));
    }
    text.push_str(
        "\nworkload options (run/compare/disasm/traces/timeline):\n\
         \x20 --arm <none|hw4x4|hw8x8|basic|whole|sr|swonly|nl|adanl|delta|policy>\n\
         \x20                           (default sr)\n\
         \x20 --arms <all|a,b,...>      arm x workload matrix over the whole\n\
         \x20                           suite + phaseshift (compare only;\n\
         \x20                           replaces the workload argument)\n\
         \x20 --full                    paper-scale run (default: test scale)\n\
         \x20 --insts <N>               measured original instructions\n\
         \x20 --jobs <N>                parallel simulations (0 = all cores)\n\
         \x20 --format <table|csv|json> result rendering (default table)\n\
         \x20 --trace-out <path>        write a Chrome trace_event file (timeline)\n\
         \x20 --jsonl-out <path>        write the raw JSONL event log (timeline)\n\
         \x20 --quick                   shorten the run for CI (timeline)\n\
         \x20 --store-dir <dir>         persistent result store directory\n\
         \x20                           (default: $TDO_STORE or .tdo-store/)\n\
         \x20 --no-store                skip the persistent result store\n\
         \nserve options:\n\
         \x20 --addr <host:port>        listen address (default 127.0.0.1:7077)\n\
         \x20 --threads <N>             simulation worker threads (default 2)\n\
         \x20 --queue <N>               bounded /run queue; beyond it requests\n\
         \x20                           shed with 503 (default 16)\n\
         \x20 --slo-us <N>              /run latency SLO in µs; a breach dumps\n\
         \x20                           the flight recorder (default 0 = off)\n\
         \x20 --flight-dir <dir>        directory for flight-recorder dumps on\n\
         \x20                           panic/saturation/SLO breach\n\
         \x20 --store-dir / --no-store  as above\n\
         \nstore actions (all honour --store-dir):\n\
         \x20 stats                     record/byte/hit counters\n\
         \x20 verify                    checksum every record in the log\n\
         \x20 gc                        drop stale-schema + shadowed records\n\
         \nping options:\n\
         \x20 (default)                 GET /health\n\
         \x20 --metrics                 GET /metrics\n\
         \x20 --prom                    GET /metrics?format=prom and validate it\n\
         \x20 --workloads               GET /workloads\n\
         \x20 --path </p>               GET an arbitrary path\n\
         \x20 --count <N>               repeat the GET N times, report RTT\n\
         \x20                           min/avg/max in integer microseconds\n\
         \x20 --run <workload>          POST /run (honours --arm/--full/--insts)\n\
         \x20 --shutdown                POST /shutdown (graceful stop)\n\
         \nperf options:\n\
         \x20 --quick                   test-scale suite (CI-sized)\n\
         \x20 --jobs <N>                parallel engine workers for phase A\n\
         \x20 --insts <N>               measured-instruction override\n\
         \x20 --out <path>              write the BENCH_PR6.json baseline\n\
         \x20 --check <path>            gate against a committed baseline\n\
         \x20 --tolerance <pct>         allowed throughput regression (default 15)\n\
         \x20 --format <table|csv|json> summary rendering\n\
         \x20 --store-dir / --no-store  as above\n\
         \nchaos options:\n\
         \x20 --seed <N>                fault-plan seed (default 1); the whole\n\
         \x20                           sweep is a pure function of it\n\
         \x20 --quick                   CI-sized sweep\n\
         \x20 --jobs <N>                engine workers for the jitter phase\n\
         \x20 --summary-out <path>      write the fault-site coverage summary\n\
         \x20 --flight-out <path>       write the attribution scenario's flight\n\
         \x20                           dump (and its log as <path>.log)\n",
    );
    text
}

fn usage() -> ExitCode {
    eprint!("{}", usage_text());
    ExitCode::FAILURE
}

struct Opts {
    arm: PrefetchSetup,
    arms: Option<String>,
    full: bool,
    insts: Option<u64>,
    jobs: usize,
    format: Format,
    trace_out: Option<String>,
    jsonl_out: Option<String>,
    quick: bool,
    store_dir: Option<String>,
    no_store: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        arm: PrefetchSetup::SwSelfRepair,
        arms: None,
        full: false,
        insts: None,
        jobs: 0,
        format: Format::Table,
        trace_out: None,
        jsonl_out: None,
        quick: false,
        store_dir: None,
        no_store: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => o.full = true,
            "--quick" => o.quick = true,
            "--no-store" => o.no_store = true,
            "--trace-out" => {
                o.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--jsonl-out" => {
                o.jsonl_out = Some(it.next().ok_or("--jsonl-out needs a path")?.clone());
            }
            "--store-dir" => {
                o.store_dir = Some(it.next().ok_or("--store-dir needs a directory")?.clone());
            }
            "--arm" => {
                let v = it.next().ok_or("--arm needs a value")?;
                o.arm =
                    PrefetchSetup::from_cli_name(v).ok_or_else(|| format!("unknown arm `{v}`"))?;
            }
            "--arms" => {
                o.arms = Some(it.next().ok_or("--arms needs `all` or a comma list")?.clone());
            }
            "--insts" => {
                let v = it.next().ok_or("--insts needs a value")?;
                o.insts = Some(v.parse().map_err(|_| format!("bad --insts `{v}`"))?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                o.format = v.parse()?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

/// The engine for `run`/`compare`: store-backed unless `--no-store`.
fn runner(o: &Opts) -> Runner {
    if o.no_store {
        Runner::new(o.jobs)
    } else {
        Runner::with_default_store(o.jobs, o.store_dir.as_deref())
    }
}

/// Prints the store accounting footer to stderr (stdout report bytes stay
/// identical warm or cold).
fn store_footer(runner: &Runner) {
    if let Some(summary) = runner.store_summary() {
        eprintln!("{summary}");
    }
}

fn scale(o: &Opts) -> Scale {
    if o.full {
        Scale::Full
    } else {
        Scale::Test
    }
}

fn load_workload(name: &str, full: bool) -> Result<Workload, String> {
    let scale = if full { Scale::Full } else { Scale::Test };
    build(name, scale).ok_or_else(|| format!("unknown workload `{name}`; try `tdo list`"))
}

fn config(o: &Opts, arm: PrefetchSetup) -> SimConfig {
    let mut cfg = if o.full { SimConfig::paper(arm) } else { SimConfig::test(arm) };
    if let Some(n) = o.insts {
        cfg.measure_insts = n;
    }
    cfg
}

fn report(r: &SimResult) {
    println!("  cycles           {}", r.cycles);
    println!("  orig insts       {}", r.orig_insts);
    println!("  IPC              {:.4}", r.ipc());
    println!("  helper active    {:.2}%", r.helper_active_fraction() * 100.0);
    println!(
        "  traces           {} installed, {} reoptimized, {} backed out",
        r.trident.traces_installed, r.trident.reoptimizations, r.trident.backouts
    );
    println!(
        "  events           {} queued, {} dropped saturated, {} dropped duplicate",
        r.trident.events_queued,
        r.trident.events_dropped_saturated,
        r.trident.events_dropped_duplicate
    );
    println!(
        "  optimizer        {} events, {} insertions, {} repairs ({} up / {} down), {} matured",
        r.optimizer.events,
        r.optimizer.insertions,
        r.optimizer.repairs,
        r.optimizer.distance_up,
        r.optimizer.distance_down,
        r.optimizer.matured
    );
    if r.optimizer.groups > 0 {
        println!(
            "  convergence      {} groups, {:.1} repairs/group, {:.0} avg cycles to converge",
            r.optimizer.groups,
            r.repairs_per_group(),
            r.avg_cycles_to_converge()
        );
    }
    let b = r.load_breakdown();
    println!(
        "  loads            {:.1}% hit | {:.1}% hit-pf | {:.1}% partial | {:.1}% miss | {:.2}% miss-by-pf",
        b[0] * 100.0,
        b[1] * 100.0,
        b[2] * 100.0,
        b[3] * 100.0,
        b[4] * 100.0
    );
    println!(
        "  miss coverage    {:.1}% in traces, {:.1}% prefetched",
        r.miss_coverage_by_traces() * 100.0,
        r.miss_coverage_by_prefetcher() * 100.0
    );
}

/// The run summary as a machine-readable report (csv/json modes).
fn metrics_report(name: &str, arm: PrefetchSetup, r: &SimResult) -> Report {
    let mut rep = Report::new("run").key("metric", 18).col("value", 12);
    let b = r.load_breakdown();
    for (metric, value) in [
        ("workload", name.to_string()),
        ("arm", format!("{arm:?}")),
        ("cycles", r.cycles.to_string()),
        ("orig_insts", r.orig_insts.to_string()),
        ("ipc", format!("{:.5}", r.ipc())),
        ("helper_active_frac", format!("{:.5}", r.helper_active_fraction())),
        ("hits", format!("{:.5}", b[0])),
        ("hit_prefetched", format!("{:.5}", b[1])),
        ("partial", format!("{:.5}", b[2])),
        ("miss", format!("{:.5}", b[3])),
        ("miss_by_prefetch", format!("{:.5}", b[4])),
        ("miss_in_traces_frac", format!("{:.5}", r.miss_coverage_by_traces())),
        ("miss_prefetched_frac", format!("{:.5}", r.miss_coverage_by_prefetcher())),
        ("events_queued", r.trident.events_queued.to_string()),
        ("dropped_saturated", r.trident.events_dropped_saturated.to_string()),
        ("dropped_duplicate", r.trident.events_dropped_duplicate.to_string()),
        ("repairs_per_group", format!("{:.3}", r.repairs_per_group())),
        ("avg_converge_cycles", format!("{:.0}", r.avg_cycles_to_converge())),
    ] {
        rep.row(metric, [value]);
    }
    rep
}

fn cmd_list() -> ExitCode {
    for name in names() {
        let w = build(name, Scale::Test).expect("suite workload");
        println!("{name:<10} {}", w.description);
    }
    ExitCode::SUCCESS
}

fn cmd_run(name: &str, o: &Opts) -> Result<ExitCode, String> {
    load_workload(name, o.full)?; // validate the name up front
    let runner = runner(o);
    let r = runner.run_cell(&Cell::new(name, scale(o), config(o, o.arm)));
    store_footer(&runner);
    if o.format == Format::Table {
        println!(
            "{name} under {:?} ({}):",
            o.arm,
            if o.full { "full scale" } else { "test scale" }
        );
        report(&r);
    } else {
        print!("{}", metrics_report(name, o.arm, &r).render(o.format));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(name: &str, o: &Opts) -> Result<ExitCode, String> {
    load_workload(name, o.full)?;
    let runner = runner(o);
    let mut spec = ExperimentSpec::new();
    for arm in PrefetchSetup::ALL {
        spec.push(Cell::new(name, scale(o), config(o, arm)));
    }
    let _ = runner.run_spec(&spec);

    let base = runner.run_cell(&Cell::new(name, scale(o), config(o, PrefetchSetup::Hw8x8)));
    let mut rep = Report::new("compare").key("arm", 18).col("IPC", 10).col("vs hw8x8", 10).rule(0);
    for arm in PrefetchSetup::ALL {
        let r = runner.run_cell(&Cell::new(name, scale(o), config(o, arm)));
        rep.row(
            format!("{arm:?}"),
            [format!("{:.4}", r.ipc()), format!("{:>9.1}%", (r.speedup_over(&base) - 1.0) * 100.0)],
        );
    }
    print!("{}", rep.render(o.format));
    store_footer(&runner);
    Ok(ExitCode::SUCCESS)
}

/// The hardware-prefetcher arsenal plus the policy controller: the arm set
/// `compare --arms all` sweeps. The policy column is last so the matrix
/// reads "static arms, then the controller that picks among them".
const ARSENAL: [PrefetchSetup; 5] = [
    PrefetchSetup::Hw8x8,
    PrefetchSetup::HwNextLine,
    PrefetchSetup::HwAdaptiveNextLine,
    PrefetchSetup::HwDelta,
    PrefetchSetup::Policy,
];

/// `tdo compare --arms <all|list>`: the full arm × workload matrix over the
/// paper's 14-benchmark suite plus the phase-shifting workload, with a
/// "which arm wins where" summary. Extends the paper's Figure 2 (stream
/// buffers per benchmark) to the whole arsenal.
fn cmd_compare_arms(spec_arg: &str, o: &Opts) -> Result<ExitCode, String> {
    let arms: Vec<PrefetchSetup> = if spec_arg == "all" {
        ARSENAL.to_vec()
    } else {
        spec_arg
            .split(',')
            .map(|n| PrefetchSetup::from_cli_name(n).ok_or_else(|| format!("unknown arm `{n}`")))
            .collect::<Result<_, _>>()?
    };
    if arms.is_empty() {
        return Err("--arms needs at least one arm".into());
    }
    let workloads: Vec<&str> = names().iter().copied().chain(["phaseshift"]).collect();

    let cfg_for = |arm: PrefetchSetup| {
        let mut cfg = config(o, arm);
        if o.quick {
            cfg.measure_insts = cfg.measure_insts.min(120_000);
        }
        cfg
    };

    // One spec with every cell: the engine fans out across `--jobs`
    // workers; the per-cell reads below are then all memo hits, so the
    // rendered bytes cannot depend on the worker count.
    let runner = runner(o);
    let mut spec = ExperimentSpec::new();
    for w in &workloads {
        for &arm in &arms {
            spec.push(Cell::new(*w, scale(o), cfg_for(arm)));
        }
    }
    let _ = runner.run_spec(&spec);

    let mut rep = Report::new("arm-matrix").key("workload", 10);
    for &arm in &arms {
        rep = rep.col(arm.cli_name(), 10);
    }
    rep = rep.col("best", 8).rule(0);

    // Per-workload IPC row + best (highest-IPC) arm; ties go to the
    // earlier arm in the sweep order, deterministically.
    let mut wins: Vec<(PrefetchSetup, Vec<&str>)> = arms.iter().map(|&a| (a, Vec::new())).collect();
    for w in &workloads {
        let results: Vec<std::sync::Arc<SimResult>> = arms
            .iter()
            .map(|&arm| runner.run_cell(&Cell::new(*w, scale(o), cfg_for(arm))))
            .collect();
        let ipc_key = |i: usize| (results[i].orig_insts * 100_000).checked_div(results[i].cycles);
        let mut best = 0;
        for i in 1..arms.len() {
            if ipc_key(i) > ipc_key(best) {
                best = i;
            }
        }
        wins[best].1.push(w);
        let mut cells: Vec<String> = results.iter().map(|r| format!("{:.4}", r.ipc())).collect();
        cells.push(arms[best].cli_name().to_string());
        rep.row((*w).to_string(), cells);
    }
    print!("{}", rep.render(o.format));

    if o.format == Format::Table {
        println!();
        println!("which arm wins where:");
        for (arm, won) in &wins {
            if !won.is_empty() {
                println!("  {:<8} {:>2} workloads: {}", arm.cli_name(), won.len(), won.join(" "));
            }
        }
    }
    store_footer(&runner);
    Ok(ExitCode::SUCCESS)
}

fn cmd_disasm(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    for (i, word) in w.program.code.iter().enumerate() {
        let pc = w.program.code_base + i as u64 * INST_BYTES;
        match decode(*word) {
            Ok(inst) => println!("{pc:#10x}  {inst}"),
            Err(e) => println!("{pc:#10x}  <invalid: {e}>"),
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_traces(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    let machine = Machine::new(&w, config(o, o.arm));
    let mut dumped = false;
    let r = machine.run_with_inspect(&mut |m| {
        for id in m.installed_traces() {
            let Some(t) = m.trident().trace(id) else { continue };
            println!(
                "trace {:?} @ {:#x}  (head {:#x}, {} insts{})",
                id,
                t.cc_addr,
                t.head,
                t.insts.len(),
                if t.is_loop { ", loop" } else { "" }
            );
            for (i, ti) in t.insts.iter().enumerate() {
                let mark = if ti.synthetic { "  <- inserted" } else { "" };
                match ti.op {
                    TraceOp::Real(inst) => println!("  [{i:>3}] {inst}{mark}"),
                    TraceOp::CondExit { cond, ra, to } => {
                        println!("  [{i:>3}] exit-if {cond:?} {ra} -> {to:#x}")
                    }
                    TraceOp::JumpBack { to } => println!("  [{i:>3}] jump-back -> {to:#x}"),
                    TraceOp::LoopBack => println!("  [{i:>3}] loop-back"),
                }
            }
            dumped = true;
        }
    });
    if !dumped {
        println!("(no traces installed)");
    }
    if o.format == Format::Table {
        println!();
        report(&r);
    } else {
        print!("{}", metrics_report(name, o.arm, &r).render(o.format));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_timeline(name: &str, o: &Opts) -> Result<ExitCode, String> {
    let w = load_workload(name, o.full)?;
    let mut cfg = config(o, o.arm);
    if o.quick {
        cfg.measure_insts = cfg.measure_insts.min(100_000);
    }
    // A timeline run is one machine on one thread: `--jobs` cannot change a
    // single cell's execution, so the emitted bytes are identical for any
    // worker count.
    let (r, recorder) = run_traced(&w, &cfg);
    let timeline = Timeline::from_events(recorder.events());

    if let Some(path) = &o.jsonl_out {
        std::fs::write(path, recorder.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {} events to {path}", recorder.len());
    }
    if let Some(path) = &o.trace_out {
        std::fs::write(path, recorder.to_chrome_trace())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (load in about:tracing or Perfetto)");
    }

    println!(
        "{name} under {:?} ({}): repair convergence",
        o.arm,
        if o.full { "full scale" } else { "test scale" }
    );
    print!("{}", timeline.render_convergence());
    println!();
    println!("windowed performance (every {} insts):", cfg.sample_insts);
    print!("{}", timeline.render_samples());
    // The arm section only exists for policy runs: static-arm timelines
    // stay byte-identical to what they printed before the arsenal existed.
    if !timeline.arm_switches.is_empty() {
        println!();
        println!("policy arm switches:");
        print!("{}", timeline.render_arms());
    }
    println!();
    report(&r);
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace_validate(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // Every plane this repo emits is validated through the same verb; the
    // format is recognized by its first bytes.
    let what = if text.starts_with("{\"traceEvents\":[") {
        let n = validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid Chrome trace ({n} entries)")
    } else if text.starts_with("{\"trace\":") {
        let n = tdo_obs::validate_flight(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid flight-recorder dump ({n} records)")
    } else if text.starts_with("ts=") {
        let n = tdo_obs::validate_log(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid structured log ({n} lines)")
    } else {
        let n = validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        format!("valid JSONL event log ({n} events)")
    };
    println!("{path}: {what}");
    Ok(ExitCode::SUCCESS)
}

/// `tdo flight <dump>`: validate a flight-recorder dump and render it as
/// one span tree per trace, with integer-µs timings.
fn cmd_flight(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // Decode the integer payloads whose meaning lives in other crates:
    // fault points carry a `Site::ALL` index, dump points a trigger index,
    // coalesce points the leader's trace id.
    let resolve = |kind: tdo_obs::FlightKind, arg: u64| -> Option<String> {
        match kind {
            tdo_obs::FlightKind::Fault => {
                tdo_fault::Site::ALL.get(arg as usize).map(|s| format!("site={}", s.name()))
            }
            tdo_obs::FlightKind::Dump => ["worker_panic", "queue_saturation", "slo_breach"]
                .get(arg as usize)
                .map(|r| format!("reason={r}")),
            tdo_obs::FlightKind::Coalesce => Some(format!("leader={arg:016x}")),
            _ => None,
        }
    };
    let rendered = tdo_obs::render_flight(&text, &resolve).map_err(|e| format!("{path}: {e}"))?;
    print!("{rendered}");
    Ok(ExitCode::SUCCESS)
}

/// `tdo serve`: the result-serving daemon (see `tdo-server`).
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                cfg.workers = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
            }
            "--queue" => {
                let v = it.next().ok_or("--queue needs a value")?;
                cfg.queue_cap = v.parse().map_err(|_| format!("bad --queue `{v}`"))?;
            }
            "--store-dir" => {
                cfg.store_dir = Some(it.next().ok_or("--store-dir needs a directory")?.clone());
            }
            "--no-store" => cfg.no_store = true,
            "--slo-us" => {
                let v = it.next().ok_or("--slo-us needs a value")?;
                cfg.slo_us = v.parse().map_err(|_| format!("bad --slo-us `{v}`"))?;
            }
            "--flight-dir" => {
                cfg.flight_dir = Some(it.next().ok_or("--flight-dir needs a directory")?.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if let Some(dir) = &cfg.flight_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create --flight-dir `{dir}`: {e}"))?;
    }
    install_sigint_handler();
    let server = Server::bind(&cfg).map_err(|e| format!("cannot bind `{}`: {e}", cfg.addr))?;
    let addr = server.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    println!(
        "tdo serve: listening on http://{addr} (workers={}, queue={})",
        cfg.workers.max(1),
        cfg.queue_cap.max(1)
    );
    let _ = std::io::stdout().flush(); // daemon spawners wait for this line
    server.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!("tdo serve: shut down cleanly");
    store_footer(server.runner());
    Ok(ExitCode::SUCCESS)
}

/// `tdo store <stats|verify|gc>`: persistent-store maintenance.
fn cmd_store(args: &[String]) -> Result<ExitCode, String> {
    let Some(action) = args.first() else {
        return Err("store needs an action: stats, verify or gc".into());
    };
    if !matches!(action.as_str(), "stats" | "verify" | "gc") {
        return Err(format!("unknown store action `{action}` (want stats, verify or gc)"));
    }
    let mut store_dir: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store-dir" => {
                store_dir = Some(it.next().ok_or("--store-dir needs a directory")?.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let dir = Store::resolve_dir(store_dir.as_deref());
    let store =
        Store::open(&dir).map_err(|e| format!("cannot open store `{}`: {e}", dir.display()))?;
    match action.as_str() {
        "stats" => {
            let s = store.stats();
            println!("store {}", dir.display());
            println!("  live records       {}", s.live_records);
            println!("  shadowed records   {}", s.shadowed_records);
            println!("  log bytes          {}", s.log_bytes);
            println!("  quarantine bytes   {}", s.quarantine_bytes);
            println!("  quarantined (run)  {}", s.quarantined);
            println!("  schema version     {SCHEMA_VERSION}");
            let sz = store.size_stats();
            if !sz.per_generation.is_empty() {
                println!();
                let mut rep = Report::new("generations")
                    .key("generation", 12)
                    .col("records", 9)
                    .col("bytes", 12)
                    .rule(0);
                for g in &sz.per_generation {
                    rep.row(
                        format!("v{}", g.version),
                        [g.records.to_string(), g.bytes.to_string()],
                    );
                }
                print!("{}", rep.render(Format::Table));
                let h = &sz.record_bytes;
                println!("  record bytes       mean {} over {} records", h.mean(), h.count);
                let mut cum = 0u64;
                for (i, n) in h.buckets.iter().enumerate() {
                    cum += n;
                    if *n == 0 {
                        continue;
                    }
                    match tdo_metrics::Histogram::bucket_le(i) {
                        Some(le) => println!("    <= {le:>10} B   {cum}"),
                        None => println!("    <=        inf B   {cum}"),
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let report = store.verify().map_err(|e| format!("verify: {e}"))?;
            println!(
                "store {}: {} good, {} corrupt, {} trailing garbage bytes",
                dir.display(),
                report.good,
                report.corrupt,
                report.trailing_garbage_bytes
            );
            Ok(if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        "gc" => {
            let report = store.gc(SCHEMA_VERSION).map_err(|e| format!("gc: {e}"))?;
            println!(
                "store {}: kept {}, dropped {} stale + {} shadowed, {} -> {} bytes",
                dir.display(),
                report.kept,
                report.dropped_stale,
                report.dropped_shadowed,
                report.bytes_before,
                report.bytes_after
            );
            Ok(ExitCode::SUCCESS)
        }
        _ => unreachable!("action validated above"),
    }
}

/// `tdo ping <addr>`: the in-repo HTTP client (CI has no curl).
fn cmd_ping(args: &[String]) -> Result<ExitCode, String> {
    let Some(addr) = args.first() else {
        return Err("ping needs a server address (host:port)".into());
    };
    let mut path: Option<String> = None;
    let mut run_workload: Option<String> = None;
    let mut arm = PrefetchSetup::SwSelfRepair;
    let mut full = false;
    let mut insts: Option<u64> = None;
    let mut shutdown = false;
    let mut prom = false;
    let mut count: u32 = 1;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--path" => path = Some(it.next().ok_or("--path needs a path")?.clone()),
            "--metrics" => path = Some("/metrics".into()),
            "--prom" => prom = true,
            "--workloads" => path = Some("/workloads".into()),
            "--count" => {
                let v = it.next().ok_or("--count needs a value")?;
                count = v.parse().map_err(|_| format!("bad --count `{v}`"))?;
                if count == 0 {
                    return Err("--count must be at least 1".into());
                }
            }
            "--run" => {
                run_workload = Some(it.next().ok_or("--run needs a workload name")?.clone());
            }
            "--arm" => {
                let v = it.next().ok_or("--arm needs a value")?;
                arm =
                    PrefetchSetup::from_cli_name(v).ok_or_else(|| format!("unknown arm `{v}`"))?;
            }
            "--full" => full = true,
            "--insts" => {
                let v = it.next().ok_or("--insts needs a value")?;
                insts = Some(v.parse().map_err(|_| format!("bad --insts `{v}`"))?);
            }
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if shutdown || run_workload.is_some() {
        // One-shot POST modes; --count applies to the GET pings only.
        let response = if shutdown {
            client::post(addr, "/shutdown", "")
        } else {
            let workload = run_workload.expect("checked above");
            let mut body = format!(
                "{{\"workload\":\"{workload}\",\"arm\":\"{}\",\"scale\":\"{}\"",
                arm.cli_name(),
                if full { "full" } else { "test" }
            );
            if let Some(n) = insts {
                body.push_str(&format!(",\"insts\":{n}"));
            }
            body.push('}');
            client::post(addr, "/run", &body)
        };
        let response = response.map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
        println!("{}", response.body);
        return if response.ok() {
            Ok(ExitCode::SUCCESS)
        } else {
            Err(format!("server answered HTTP {}", response.status))
        };
    }

    // GET modes: `--count N` repeats the request and reports round-trip
    // times in integer microseconds.
    let get_path = if prom {
        "/metrics?format=prom".to_string()
    } else {
        path.unwrap_or_else(|| "/health".into())
    };
    let mut rtts_us: Vec<u64> = Vec::with_capacity(count as usize);
    let mut response = None;
    for _ in 0..count {
        let t0 = std::time::Instant::now();
        let r = client::get(addr, &get_path).map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
        rtts_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        response = Some(r);
    }
    let response = response.expect("count >= 1");
    println!("{}", response.body);
    let (min, max) = (rtts_us.iter().min(), rtts_us.iter().max());
    let avg = rtts_us.iter().sum::<u64>() / rtts_us.len() as u64;
    println!(
        "rtt_us min={} avg={avg} max={} ({count} pings)",
        min.expect("nonempty"),
        max.expect("nonempty")
    );
    if prom {
        let stats = tdo_metrics::expo::parse_text(&response.body)
            .map_err(|e| format!("prom exposition invalid: {e}"))?;
        // The observability plane must actually be wired into the daemon's
        // exposition — a scrape missing these families means the trace/log/
        // flight layer fell off the registry.
        for family in [
            "tdo_obs_flight_recorded_total",
            "tdo_obs_flight_overwritten_total",
            "tdo_obs_flight_dropped_total",
            "tdo_obs_log_lines_total",
            "tdo_server_bad_requests_total",
            "tdo_server_flight_dumps_total",
        ] {
            if !response.body.contains(family) {
                return Err(format!("prom exposition is missing the `{family}` family"));
            }
        }
        println!("prom: {} families, {} samples, exposition valid", stats.families, stats.samples);
    }
    if response.ok() {
        Ok(ExitCode::SUCCESS)
    } else {
        Err(format!("server answered HTTP {}", response.status))
    }
}

/// `tdo perf`: the throughput-baseline pipeline (see `tdo_bench::perf`).
fn cmd_perf(args: &[String]) -> Result<ExitCode, String> {
    // Like run/compare, the CLI reads through the persistent store unless
    // `--no-store` asks otherwise (the programmatic default is storeless).
    let mut o = tdo_bench::perf::PerfOpts { no_store: false, ..Default::default() };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--no-store" => o.no_store = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
            }
            "--insts" => {
                let v = it.next().ok_or("--insts needs a value")?;
                o.insts = Some(v.parse().map_err(|_| format!("bad --insts `{v}`"))?);
            }
            "--out" => o.out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--check" => o.check = Some(it.next().ok_or("--check needs a path")?.clone()),
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                o.tolerance = v.parse().map_err(|_| format!("bad --tolerance `{v}`"))?;
                if o.tolerance > 100 {
                    return Err("--tolerance is a percentage (0-100)".into());
                }
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                o.format = v.parse()?;
            }
            "--store-dir" => {
                o.store_dir = Some(it.next().ok_or("--store-dir needs a directory")?.clone());
                o.no_store = false;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let outcome = tdo_bench::perf::measure(&o);
    print!("{}", outcome.table);
    if let Some(summary) = &outcome.store_summary {
        eprintln!("{summary}");
    }
    if let Some(path) = &o.out {
        std::fs::write(path, &outcome.json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote baseline to {path}");
    }
    if let Some(path) = &o.check {
        let baseline =
            std::fs::read_to_string(path).map_err(|e| format!("read baseline {path}: {e}"))?;
        // Attribution first, verdict second: when the gate fails, the table
        // saying *which phase* regressed is the part worth reading.
        print!("{}", tdo_bench::perf::phase_delta_table(&baseline, &outcome.json));
        let verdict =
            tdo_bench::perf::check_against(&baseline, outcome.insts_per_sec, o.tolerance)?;
        println!("{verdict}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `tdo chaos`: the deterministic fault-injection sweep (see
/// `tdo_bench::chaos`). Exits nonzero when any chaos invariant is violated.
fn cmd_chaos(args: &[String]) -> Result<ExitCode, String> {
    let mut o = tdo_bench::chaos::ChaosOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                o.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
            }
            "--summary-out" => {
                o.summary_out = Some(it.next().ok_or("--summary-out needs a path")?.clone());
            }
            "--flight-out" => {
                o.flight_out = Some(it.next().ok_or("--flight-out needs a path")?.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let outcome = tdo_bench::chaos::run(&o);
    print!("{}", outcome.report);
    if let Some(path) = &o.summary_out {
        std::fs::write(path, &outcome.coverage_text).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote fault-site coverage to {path}");
    }
    if let Some(path) = &o.flight_out {
        std::fs::write(path, &outcome.flight_dump).map_err(|e| format!("write {path}: {e}"))?;
        let log_path = format!("{path}.log");
        std::fs::write(&log_path, &outcome.flight_log)
            .map_err(|e| format!("write {log_path}: {e}"))?;
        eprintln!("wrote flight dump to {path} (+ {log_path})");
    }
    Ok(if outcome.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// Routes one command. Every arm here must be listed in [`COMMANDS`] (and
/// therefore in the usage text) — a unit test enforces it.
fn dispatch(cmd: &str, args: &[String]) -> Result<ExitCode, String> {
    match cmd {
        "list" => Ok(cmd_list()),
        "trace-validate" => {
            let Some(path) = args.first() else {
                return Err("trace-validate needs a file path".into());
            };
            cmd_trace_validate(path)
        }
        "flight" => {
            let Some(path) = args.first() else {
                return Err("flight needs a dump file path".into());
            };
            cmd_flight(path)
        }
        "serve" => cmd_serve(args),
        "store" => cmd_store(args),
        "ping" => cmd_ping(args),
        "perf" => cmd_perf(args),
        "chaos" => cmd_chaos(args),
        "run" | "compare" | "disasm" | "traces" | "timeline" => {
            // `compare --arms <all|list>` sweeps the whole suite and takes
            // no workload argument.
            if cmd == "compare" && args.first().is_some_and(|a| a.starts_with("--")) {
                let opts = parse_opts(args)?;
                let spec = opts.arms.clone().ok_or("compare needs a workload name (or --arms)")?;
                return cmd_compare_arms(&spec, &opts);
            }
            let Some(name) = args.first() else {
                return Err(format!("{cmd} needs a workload name"));
            };
            let opts = parse_opts(&args[1..])?;
            if cmd == "compare" && opts.arms.is_some() {
                return Err("--arms replaces the workload argument: `tdo compare --arms …`".into());
            }
            match cmd {
                "run" => cmd_run(name, &opts),
                "compare" => cmd_compare(name, &opts),
                "disasm" => cmd_disasm(name, &opts),
                "timeline" => cmd_timeline(name, &opts),
                _ => cmd_traces(name, &opts),
            }
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match dispatch(cmd, &args[1..]) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite guarantee: the help text cannot drift from the dispatcher.
    /// Every dispatched subcommand string appears in `usage()`, and every
    /// documented command is actually dispatched (a bogus flag produces a
    /// per-command error, never `unknown command`).
    #[test]
    fn every_command_is_documented_and_dispatched() {
        let text = usage_text();
        for (name, summary) in COMMANDS {
            assert!(
                text.lines().any(|l| l.trim_start().starts_with(name)),
                "usage() does not document `{name}`"
            );
            assert!(!summary.is_empty(), "`{name}` needs a summary");
            let err =
                dispatch(name, &["--definitely-not-a-flag".to_string()]).err().unwrap_or_default();
            assert!(
                !err.starts_with("unknown command"),
                "documented command `{name}` is not dispatched"
            );
        }
        assert!(
            dispatch("definitely-not-a-command", &[]).unwrap_err().starts_with("unknown command"),
            "the dispatcher must reject unknown commands"
        );
    }

    /// Arm names accepted by `--arm` round-trip through the shared mapping.
    #[test]
    fn arm_names_round_trip() {
        for setup in PrefetchSetup::ALL {
            assert_eq!(PrefetchSetup::from_cli_name(setup.cli_name()), Some(setup));
        }
        assert_eq!(PrefetchSetup::from_cli_name("warp-drive"), None);
        assert!(
            usage_text().contains("none|hw4x4|hw8x8|basic|whole|sr|swonly|nl|adanl|delta|policy")
        );
    }

    /// The `--arms all` arsenal is exactly the hardware arms plus the
    /// policy controller, and stays in sync with the setup enum.
    #[test]
    fn arsenal_covers_the_hardware_arms_and_policy() {
        assert_eq!(ARSENAL.last(), Some(&PrefetchSetup::Policy));
        for setup in ARSENAL {
            assert!(PrefetchSetup::ALL.contains(&setup));
        }
        assert!(usage_text().contains("--arms <all|a,b,...>"));
    }
}
