//! Randomized tests for the Delinquent Load Table against a naive reference
//! model of the paper's §3.3 rules. (Seeded `tdo_rand` sweeps; `--features
//! exhaustive` widens them.)

use std::collections::{HashMap, HashSet};

use tdo_core::{Dlt, DltConfig};
use tdo_rand::{cases, Rng};

#[derive(Default, Clone)]
struct RefEntry {
    accesses: u32,
    misses: u32,
    total_lat: u64,
    last: Option<u64>,
    stride: i64,
    conf: u8,
    pending: bool,
}

/// Straight transcription of the monitoring-window rules, for one PC that
/// never suffers DLT eviction (the table in the test is big enough).
struct RefModel {
    cfg: DltConfig,
    entries: HashMap<u64, RefEntry>,
}

impl RefModel {
    fn observe(&mut self, pc: u64, addr: u64, miss: bool, lat: u64) -> bool {
        let e = self.entries.entry(pc).or_default();
        if let Some(last) = e.last {
            let s = addr.wrapping_sub(last) as i64;
            if s == e.stride {
                e.conf = e.conf.saturating_add(1).min(self.cfg.conf_max);
            } else {
                e.conf = e.conf.saturating_sub(self.cfg.conf_dec);
                e.stride = s;
            }
        }
        e.last = Some(addr);
        e.accesses += 1;
        if miss {
            e.misses += 1;
            e.total_lat += lat;
        }
        if !e.accesses.is_multiple_of(self.cfg.window) {
            return false;
        }
        let delinquent = e.misses >= self.cfg.miss_threshold
            && e.misses > 0
            && (e.total_lat as f64 / f64::from(e.misses)) > self.cfg.latency_threshold as f64;
        if delinquent {
            e.pending = true;
            return true;
        }
        if !e.pending {
            e.accesses = 0;
            e.misses = 0;
            e.total_lat = 0;
        }
        false
    }
}

fn cfg() -> DltConfig {
    DltConfig {
        entries: 4096, // large: the reference model has no capacity effects
        assoc: 2,
        window: 32,
        miss_threshold: 3,
        latency_threshold: 18,
        conf_max: 15,
        conf_dec: 7,
        partial_min_accesses: 8,
    }
}

#[test]
fn dlt_matches_reference_model() {
    let mut rng = Rng::new(0xd17_0001);
    for case in 0..cases(128) {
        let mut dlt = Dlt::new(cfg());
        let mut reference = RefModel { cfg: cfg(), entries: HashMap::new() };
        for _ in 0..rng.gen_range(1..600) {
            // Well-spread PCs avoid set conflicts so eviction never differs.
            let pc = 0x1000 + rng.gen_range(0..8) * 0x808;
            let addr = rng.gen_range(0..1 << 20);
            let miss = rng.gen_bool(0.5);
            let lat = rng.gen_range(3..400);
            let a = dlt.observe(pc, addr, miss, lat);
            let b = reference.observe(pc, addr, miss, lat);
            assert_eq!(a, b, "case {case}: event divergence at pc {pc:#x}");
        }
        // Snapshots agree with the model on stride predictability.
        for (pc, e) in &reference.entries {
            if e.accesses >= cfg().partial_min_accesses {
                let snap = dlt.snapshot(*pc).expect("tracked");
                assert_eq!(snap.accesses, e.accesses, "case {case}");
                assert_eq!(snap.misses, e.misses, "case {case}");
                assert_eq!(
                    snap.stride_predictable,
                    e.conf >= cfg().conf_max && e.stride != 0,
                    "case {case}: pc {pc:#x}"
                );
            }
        }
    }
}

#[test]
fn mature_loads_never_fire() {
    let mut rng = Rng::new(0xd17_0002);
    for case in 0..cases(128) {
        let mut dlt = Dlt::new(cfg());
        let pc = 0x2000;
        dlt.observe(pc, 0, true, 350);
        dlt.set_mature(pc);
        for _ in 0..rng.gen_range(64..400) {
            let addr = rng.gen_range(0..1 << 16);
            let lat = rng.gen_range(3..400);
            assert!(!dlt.observe(pc, addr, true, lat), "case {case}: mature load fired");
        }
        assert!(!dlt.is_delinquent(pc), "case {case}");
    }
}

#[test]
fn clear_window_resets_counters_but_keeps_stride() {
    let mut rng = Rng::new(0xd17_0003);
    for case in 0..cases(128) {
        let n = rng.gen_range(16..200) as u32;
        let stride = rng.gen_range(1..512);
        let mut dlt = Dlt::new(cfg());
        let pc = 0x3000;
        for i in 0..n {
            dlt.observe(pc, u64::from(i) * stride, true, 350);
        }
        let before = dlt.snapshot(pc);
        dlt.clear_window(pc);
        for i in 0..8u32 {
            dlt.observe(pc, u64::from(n + i) * stride, false, 3);
        }
        let after = dlt.snapshot(pc).expect("still tracked");
        assert_eq!(after.accesses, 8, "case {case}: window restarted");
        assert_eq!(after.misses, 0, "case {case}");
        if let Some(b) = before {
            // Stride learning is cumulative across window clears.
            assert!(after.stride_predictable || !b.stride_predictable, "case {case}");
        }
    }
}

#[test]
fn clear_all_mature_reopens_every_load() {
    let mut rng = Rng::new(0xd17_0004);
    for case in 0..cases(128) {
        let mut pcs = HashSet::new();
        for _ in 0..rng.gen_range(1..32) {
            pcs.insert(rng.gen_range(0..1 << 14));
        }
        let mut dlt = Dlt::new(cfg());
        for pc in &pcs {
            dlt.observe(*pc * 8, 0, true, 350);
            dlt.set_mature(*pc * 8);
        }
        let cleared = dlt.clear_all_mature();
        assert!(cleared >= 1, "case {case}");
        for pc in &pcs {
            assert!(!dlt.is_mature(*pc * 8), "case {case}: pc {pc:#x}");
        }
    }
}
