//! Property tests for the Delinquent Load Table against a naive reference
//! model of the paper's §3.3 rules.

use std::collections::HashMap;

use proptest::prelude::*;
use tdo_core::{Dlt, DltConfig};

#[derive(Default, Clone)]
struct RefEntry {
    accesses: u32,
    misses: u32,
    total_lat: u64,
    last: Option<u64>,
    stride: i64,
    conf: u8,
    pending: bool,
}

/// Straight transcription of the monitoring-window rules, for one PC that
/// never suffers DLT eviction (the table in the test is big enough).
struct RefModel {
    cfg: DltConfig,
    entries: HashMap<u64, RefEntry>,
}

impl RefModel {
    fn observe(&mut self, pc: u64, addr: u64, miss: bool, lat: u64) -> bool {
        let e = self.entries.entry(pc).or_default();
        if let Some(last) = e.last {
            let s = addr.wrapping_sub(last) as i64;
            if s == e.stride {
                e.conf = e.conf.saturating_add(1).min(self.cfg.conf_max);
            } else {
                e.conf = e.conf.saturating_sub(self.cfg.conf_dec);
                e.stride = s;
            }
        }
        e.last = Some(addr);
        e.accesses += 1;
        if miss {
            e.misses += 1;
            e.total_lat += lat;
        }
        if e.accesses % self.cfg.window != 0 {
            return false;
        }
        let delinquent = e.misses >= self.cfg.miss_threshold
            && e.misses > 0
            && (e.total_lat as f64 / f64::from(e.misses)) > self.cfg.latency_threshold as f64;
        if delinquent {
            e.pending = true;
            return true;
        }
        if !e.pending {
            e.accesses = 0;
            e.misses = 0;
            e.total_lat = 0;
        }
        false
    }
}

fn cfg() -> DltConfig {
    DltConfig {
        entries: 4096, // large: the reference model has no capacity effects
        assoc: 2,
        window: 32,
        miss_threshold: 3,
        latency_threshold: 18,
        conf_max: 15,
        conf_dec: 7,
        partial_min_accesses: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn dlt_matches_reference_model(
        ops in prop::collection::vec(
            (0u64..8, 0u64..1 << 20, any::<bool>(), 3u64..400),
            1..600,
        ),
    ) {
        let mut dlt = Dlt::new(cfg());
        let mut reference = RefModel { cfg: cfg(), entries: HashMap::new() };
        for (pc_idx, addr, miss, lat) in ops {
            // Well-spread PCs avoid set conflicts so eviction never differs.
            let pc = 0x1000 + pc_idx * 0x808;
            let a = dlt.observe(pc, addr, miss, lat);
            let b = reference.observe(pc, addr, miss, lat);
            prop_assert_eq!(a, b, "event divergence at pc {:#x}", pc);
        }
        // Snapshots agree with the model on stride predictability.
        for (pc, e) in &reference.entries {
            if e.accesses >= cfg().partial_min_accesses {
                let snap = dlt.snapshot(*pc).expect("tracked");
                prop_assert_eq!(snap.accesses, e.accesses);
                prop_assert_eq!(snap.misses, e.misses);
                prop_assert_eq!(
                    snap.stride_predictable,
                    e.conf >= cfg().conf_max && e.stride != 0
                );
            }
        }
    }

    #[test]
    fn mature_loads_never_fire(
        ops in prop::collection::vec((0u64..1 << 16, 3u64..400), 64..400),
    ) {
        let mut dlt = Dlt::new(cfg());
        let pc = 0x2000;
        dlt.observe(pc, 0, true, 350);
        dlt.set_mature(pc);
        for (addr, lat) in ops {
            prop_assert!(!dlt.observe(pc, addr, true, lat), "mature load fired");
        }
        prop_assert!(!dlt.is_delinquent(pc));
    }

    #[test]
    fn clear_window_resets_counters_but_keeps_stride(
        n in 16u32..200,
        stride in 1u64..512,
    ) {
        let mut dlt = Dlt::new(cfg());
        let pc = 0x3000;
        for i in 0..n {
            dlt.observe(pc, u64::from(i) * stride, true, 350);
        }
        let before = dlt.snapshot(pc);
        dlt.clear_window(pc);
        for i in 0..8u32 {
            dlt.observe(pc, u64::from(n + i) * stride, false, 3);
        }
        let after = dlt.snapshot(pc).expect("still tracked");
        prop_assert_eq!(after.accesses, 8, "window restarted");
        prop_assert_eq!(after.misses, 0);
        if let Some(b) = before {
            // Stride learning is cumulative across window clears.
            prop_assert!(after.stride_predictable || !b.stride_predictable);
        }
    }

    #[test]
    fn clear_all_mature_reopens_every_load(pcs in prop::collection::hash_set(0u64..1 << 14, 1..32)) {
        let mut dlt = Dlt::new(cfg());
        for pc in &pcs {
            dlt.observe(*pc * 8, 0, true, 350);
            dlt.set_mature(*pc * 8);
        }
        let cleared = dlt.clear_all_mature();
        prop_assert!(cleared >= 1);
        for pc in &pcs {
            prop_assert!(!dlt.is_mature(*pc * 8));
        }
    }
}
