//! Randomized tests on prefetch-insertion invariants: whatever the trace and
//! DLT state, the planned body is layout-sane, weight-preserving, and never
//! prefetches a cache block twice for the same group. (Seeded `tdo_rand`
//! sweeps; `--features exhaustive` widens them.)

use tdo_core::classify::classify;
use tdo_core::{plan_insertion, Dlt, DltConfig, InsertOptions};
use tdo_isa::{AluOp, Cond, Inst, LoadKind, Reg};
use tdo_rand::{cases, Rng};
use tdo_trident::{Trace, TraceId, TraceInst, TraceOp};

fn ti(op: TraceOp) -> TraceInst {
    TraceInst { op, orig_pc: 0, weight: 1, synthetic: false }
}

/// Builds a random loop trace: a handful of loads off bases r1..r3 with
/// random offsets, base updates, some ALU noise, a conditional exit, and a
/// loop-back. orig_pc values are made unique afterwards.
fn arb_trace(rng: &mut Rng) -> Trace {
    let n = rng.gen_range(2..24);
    let mut insts: Vec<TraceInst> = (0..n)
        .map(|_| {
            // Weighted 4 (load) / 2 (alu) / 1 (base bump).
            ti(match rng.gen_range(0..7) {
                0..=3 => {
                    let b = rng.gen_range(1..4) as u8;
                    TraceOp::Real(Inst::Load {
                        ra: Reg::int(10 + b),
                        rb: Reg::int(b),
                        off: rng.gen_range_i64(0..40) * 8,
                        kind: LoadKind::Int,
                    })
                }
                4 | 5 => TraceOp::Real(Inst::OpImm {
                    op: AluOp::Add,
                    ra: Reg::int(rng.gen_range(1..10) as u8),
                    imm: 1,
                    rc: Reg::int(15),
                }),
                _ => {
                    let b = rng.gen_range(1..4) as u8;
                    TraceOp::Real(Inst::Lda {
                        ra: Reg::int(b),
                        rb: Reg::int(b),
                        imm: rng.gen_range_i64(1..64) * 8,
                    })
                }
            })
        })
        .collect();
    insts.push(ti(TraceOp::CondExit { cond: Cond::Eq, ra: Reg::int(9), to: 0x9000 }));
    insts.push(ti(TraceOp::LoopBack));
    for (i, t) in insts.iter_mut().enumerate() {
        t.orig_pc = 0x1000 + i as u64 * 8;
    }
    Trace { id: TraceId(0), head: 0x1000, insts, is_loop: true, cc_addr: 0x10_0000 }
}

const SCRATCH: [Reg; 8] = [
    Reg::int(20),
    Reg::int(21),
    Reg::int(22),
    Reg::int(23),
    Reg::int(24),
    Reg::int(25),
    Reg::int(26),
    Reg::int(27),
];

#[test]
fn insertion_invariants_hold() {
    let mut rng = Rng::new(0x1a5_0001);
    for case in 0..cases(192) {
        let trace = arb_trace(&mut rng);
        // Make a pseudo-random subset of loads delinquent via the DLT.
        let mut dlt = Dlt::new(DltConfig {
            entries: 256,
            assoc: 2,
            window: 16,
            miss_threshold: 2,
            latency_threshold: 18,
            partial_min_accesses: 8,
            ..DltConfig::paper_baseline()
        });
        for (i, t) in trace.insts.iter().enumerate() {
            if matches!(t.op, TraceOp::Real(Inst::Load { .. })) {
                let missy = rng.gen_bool(0.5);
                for k in 0..16u64 {
                    dlt.observe(trace.cc_pc(i), 0x8_0000 + k * 8, missy, 350);
                }
            }
        }
        let c = classify(&trace, &dlt, |i| trace.cc_pc(i));
        let opts = InsertOptions {
            line_bytes: 64,
            same_object: true,
            pointer_deref: true,
            distance_of: &|_| 1,
            scratch_pool: &SCRATCH,
        };
        let Some(plan) = plan_insertion(&trace, &c, &opts) else {
            continue; // nothing delinquent/prefetchable: fine
        };

        // 1. The original instructions appear in order, uninserted slots
        //    untouched; total weight is preserved.
        let originals: Vec<&TraceInst> = plan.new_insts.iter().filter(|t| !t.synthetic).collect();
        assert_eq!(originals.len(), trace.insts.len(), "case {case}");
        for (a, b) in originals.iter().zip(trace.insts.iter()) {
            assert_eq!(a.op, b.op, "case {case}");
            assert_eq!(a.weight, b.weight, "case {case}");
        }
        let w_before: u64 = trace.insts.iter().map(|t| u64::from(t.weight)).sum();
        let w_after: u64 = plan.new_insts.iter().map(|t| u64::from(t.weight)).sum();
        assert_eq!(w_before, w_after, "case {case}: synthetic instructions weigh zero");

        // 2. Every synthetic instruction is a prefetch or a non-faulting
        //    load using only scratch destinations.
        for t in plan.new_insts.iter().filter(|t| t.synthetic) {
            match t.op {
                TraceOp::Real(Inst::Prefetch { .. }) => {}
                TraceOp::Real(Inst::Load { ra, kind: LoadKind::NonFaulting, .. }) => {
                    assert!(SCRATCH.contains(&ra), "case {case}: deref clobbers {ra}");
                }
                ref other => panic!("case {case}: unexpected synthetic {other:?}"),
            }
        }

        // 3. Within a stride group, no cache block is prefetched twice
        //    ("only prefetch each block once", §3.4.2).
        for g in &plan.groups {
            let mut lines = std::collections::HashSet::new();
            for &idx in &g.prefetch_indices {
                if let TraceOp::Real(Inst::Prefetch { off, stride, .. }) = plan.new_insts[idx].op {
                    if stride != 0 {
                        assert!(
                            lines.insert(i64::from(off).div_euclid(64)),
                            "case {case}: block prefetched twice at offset {off}"
                        );
                    }
                }
            }
            // 4. Group indices point at actual prefetches.
            for &idx in &g.prefetch_indices {
                let is_pf = matches!(plan.new_insts[idx].op, TraceOp::Real(Inst::Prefetch { .. }));
                assert!(is_pf, "case {case}: index {idx} is not a prefetch");
            }
            // 5. Synthetic instructions carry the representative's orig_pc.
            for &idx in &g.prefetch_indices {
                assert_eq!(plan.new_insts[idx].orig_pc, g.rep_orig_pc, "case {case}");
            }
        }

        // 6. The terminators survive in place at the end.
        let ends_with_loopback = matches!(plan.new_insts.last().unwrap().op, TraceOp::LoopBack);
        assert!(ends_with_loopback, "case {case}");
    }
}
