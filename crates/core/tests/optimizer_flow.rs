//! End-to-end optimizer flow: a delinquent load event first triggers
//! prefetch insertion (trace replacement), subsequent events repair the
//! distance in place, and the repair budget eventually matures the load.

use std::collections::HashMap;

use tdo_core::{
    Dlt, DltConfig, OptimizerConfig, PrefetchOptimizer, PreparedAction, SwPrefetchMode,
};
use tdo_isa::{decode, prefetch_distance, AluOp, Asm, Cond, Inst, Reg};
use tdo_trident::{CodeSource, HotEvent, TraceId, TraceOp, Trident, TridentConfig};

struct MapCode(HashMap<u64, Inst>);

impl CodeSource for MapCode {
    fn fetch_inst(&self, pc: u64) -> Option<Inst> {
        self.0.get(&pc).copied()
    }
}

/// Builds `loop: ldq r2,0(r1); ldq r3,8(r1); lda r1,96(r1); subi r4,1,r4;
/// bne r4, loop; halt` and installs it as a hot trace.
fn setup() -> (Trident, MapCode, TraceId) {
    let (r1, r2, r3, r4) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.ldq(r2, r1, 0);
    a.ldq(r3, r1, 8);
    a.lda(r1, r1, 96);
    a.op_imm(AluOp::Sub, r4, 1, r4);
    a.bcond_to(Cond::Ne, r4, "loop");
    a.halt();
    let words = a.assemble().unwrap();
    let code = MapCode(
        words
            .iter()
            .enumerate()
            .map(|(i, w)| (0x1000 + i as u64 * 8, decode(*w).unwrap()))
            .collect(),
    );
    let mut cfg = TridentConfig::paper_baseline();
    cfg.code_cache_base = 0x10_0000;
    let mut trident = Trident::new(cfg);
    let pending = trident.prepare_install(0, &code, 0x1000, 0b1, 1).unwrap();
    trident.commit_install(0, &pending).unwrap();
    let id = pending.trace.id;
    (trident, code, id)
}

fn small_dlt() -> Dlt {
    Dlt::new(DltConfig {
        entries: 64,
        assoc: 2,
        window: 32,
        miss_threshold: 4,
        latency_threshold: 100,
        partial_min_accesses: 8,
        ..DltConfig::paper_baseline()
    })
}

/// Feeds one window of misses for the loads at `indices` of `trace`,
/// returning the event-triggering load PC if any.
fn feed_window(
    dlt: &mut Dlt,
    trident: &Trident,
    trace: TraceId,
    indices: &[usize],
    avg_latency: u64,
) -> Option<u64> {
    let t = trident.trace(trace).unwrap();
    let mut fired = None;
    for k in 0..32u64 {
        for &i in indices {
            let pc = t.cc_pc(i);
            // Strided addresses so the DLT also learns the stride.
            if dlt.observe(pc, 0x100_0000 + k * 96 + i as u64 * 8, k % 2 == 0, avg_latency) {
                fired.get_or_insert(pc);
            }
        }
    }
    fired
}

fn load_indices(trident: &Trident, trace: TraceId) -> Vec<usize> {
    trident
        .trace(trace)
        .unwrap()
        .insts
        .iter()
        .enumerate()
        .filter(|(_, ti)| matches!(ti.op, TraceOp::Real(Inst::Load { .. }) if !ti.synthetic))
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn first_event_inserts_prefetches_into_a_replacement_trace() {
    let (mut trident, code, trace) = setup();
    let mut dlt = small_dlt();
    let mut opt =
        PrefetchOptimizer::new(OptimizerConfig::paper_baseline(SwPrefetchMode::SelfRepair));

    let loads = load_indices(&trident, trace);
    assert_eq!(loads.len(), 2);
    let fired = feed_window(&mut dlt, &trident, trace, &loads, 300).expect("event");
    let ev = HotEvent::DelinquentLoad { load_pc: fired, trace };
    let action = opt.handle_event(0, ev, &mut trident, &mut dlt, &code);
    let PreparedAction::Install(ref pending) = action else {
        panic!("expected insertion, got {action:?}");
    };
    let new_id = pending.trace.id;
    // Both loads (offsets 0 and 8, same line) are covered by one prefetch.
    let prefetches: Vec<&tdo_trident::TraceInst> = pending
        .trace
        .insts
        .iter()
        .filter(|ti| matches!(ti.op, TraceOp::Real(Inst::Prefetch { .. })))
        .collect();
    // Offset 8 is within the line of offset 0, so it is skipped — but a
    // skipped load owes one extra cache block (paper §3.4.2): two
    // prefetches, at offsets 0 and 64.
    assert_eq!(prefetches.len(), 2);
    let offs: Vec<i32> = prefetches
        .iter()
        .map(|p| match p.op {
            TraceOp::Real(Inst::Prefetch { off, stride, dist, .. }) => {
                assert_eq!(stride, 96);
                assert_eq!(dist, 1, "self-repair starts at distance 1");
                off
            }
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(offs, vec![0, 64]);
    let patches = opt.commit(0, action, &mut trident, &mut dlt).unwrap();
    assert!(!patches.is_empty());
    assert!(trident.trace(trace).is_none(), "old trace replaced");
    assert!(trident.trace(new_id).is_some());
    assert_eq!(opt.stats.insertions, 1);
}

#[test]
fn repair_walks_distance_up_while_latency_improves() {
    let (mut trident, code, trace) = setup();
    let mut dlt = small_dlt();
    let mut opt =
        PrefetchOptimizer::new(OptimizerConfig::paper_baseline(SwPrefetchMode::SelfRepair));

    // Insert.
    let loads = load_indices(&trident, trace);
    let fired = feed_window(&mut dlt, &trident, trace, &loads, 300).unwrap();
    let action = opt.handle_event(
        0,
        HotEvent::DelinquentLoad { load_pc: fired, trace },
        &mut trident,
        &mut dlt,
        &code,
    );
    let new_id = match &action {
        PreparedAction::Install(p) => p.trace.id,
        other => panic!("expected install, got {other:?}"),
    };
    opt.commit(0, action, &mut trident, &mut dlt).unwrap();
    // Provide a min execution time so the max distance is meaningful:
    // 350 / 10 = 35.
    trident.watch.on_enter(new_id, 0);
    trident.watch.on_enter(new_id, 10);

    // Repair rounds with monotonically improving latency: distance climbs.
    let mut distances = Vec::new();
    for round in 0..3u64 {
        let loads = load_indices(&trident, new_id);
        let fired = feed_window(&mut dlt, &trident, new_id, &loads, 280 - round * 40)
            .expect("still delinquent");
        let action = opt.handle_event(
            0,
            HotEvent::DelinquentLoad { load_pc: fired, trace: new_id },
            &mut trident,
            &mut dlt,
            &code,
        );
        match &action {
            PreparedAction::Repair { patches, .. } => {
                let (_, word) = patches[0];
                distances.push(prefetch_distance(word).unwrap());
            }
            other => panic!("expected repair, got {other:?}"),
        }
        let applied = opt.commit(0, action, &mut trident, &mut dlt).unwrap();
        assert_eq!(applied.len(), 2, "both group prefetches repaired together");
    }
    assert_eq!(distances, vec![2, 3, 4], "distance walks up by one per repair");
    assert_eq!(opt.stats.repairs, 3);
    assert_eq!(opt.stats.distance_up, 3);

    // The registered trace body reflects the patched distance.
    let t = trident.trace(new_id).unwrap();
    let dist_in_registry = t
        .insts
        .iter()
        .find_map(|ti| match ti.op {
            TraceOp::Real(Inst::Prefetch { dist, .. }) => Some(dist),
            _ => None,
        })
        .unwrap();
    assert_eq!(dist_in_registry, 4);
}

#[test]
fn worsening_latency_backs_the_distance_off() {
    let (mut trident, code, trace) = setup();
    let mut dlt = small_dlt();
    let mut opt =
        PrefetchOptimizer::new(OptimizerConfig::paper_baseline(SwPrefetchMode::SelfRepair));

    let loads = load_indices(&trident, trace);
    let fired = feed_window(&mut dlt, &trident, trace, &loads, 300).unwrap();
    let action = opt.handle_event(
        0,
        HotEvent::DelinquentLoad { load_pc: fired, trace },
        &mut trident,
        &mut dlt,
        &code,
    );
    let new_id = match &action {
        PreparedAction::Install(p) => p.trace.id,
        other => panic!("unexpected {other:?}"),
    };
    opt.commit(0, action, &mut trident, &mut dlt).unwrap();
    trident.watch.on_enter(new_id, 0);
    trident.watch.on_enter(new_id, 10);

    // Round 1 improves (distance 2), round 2 worsens (back to 1 → the
    // patch in round 3... round 2 patches down to 1).
    let latencies = [250u64, 340];
    let mut last_distance = 1;
    for lat in latencies {
        let loads = load_indices(&trident, new_id);
        let fired = feed_window(&mut dlt, &trident, new_id, &loads, lat).unwrap();
        let action = opt.handle_event(
            0,
            HotEvent::DelinquentLoad { load_pc: fired, trace: new_id },
            &mut trident,
            &mut dlt,
            &code,
        );
        if let PreparedAction::Repair { patches, .. } = &action {
            last_distance = prefetch_distance(patches[0].1).unwrap();
        }
        opt.commit(0, action, &mut trident, &mut dlt).unwrap();
    }
    assert_eq!(last_distance, 1, "worsening latency decrements the distance");
    assert_eq!(opt.stats.distance_down, 1);
}

#[test]
fn repair_budget_exhaustion_matures_the_load() {
    let (mut trident, code, trace) = setup();
    let mut dlt = small_dlt();
    let mut opt =
        PrefetchOptimizer::new(OptimizerConfig::paper_baseline(SwPrefetchMode::SelfRepair));

    // A long min execution time, observed before insertion, keeps the max
    // distance (and therefore the repair budget) small: max = 350/200 = 1,
    // budget = 2 repairs.
    trident.watch.on_enter(trace, 0);
    trident.watch.on_enter(trace, 200);
    let loads = load_indices(&trident, trace);
    let fired = feed_window(&mut dlt, &trident, trace, &loads, 300).unwrap();
    let action = opt.handle_event(
        0,
        HotEvent::DelinquentLoad { load_pc: fired, trace },
        &mut trident,
        &mut dlt,
        &code,
    );
    let new_id = match &action {
        PreparedAction::Install(p) => p.trace.id,
        other => panic!("unexpected {other:?}"),
    };
    opt.commit(0, action, &mut trident, &mut dlt).unwrap();
    trident.watch.on_enter(new_id, 0);
    trident.watch.on_enter(new_id, 200);

    let mut matured_pc = None;
    for _ in 0..4 {
        let loads = load_indices(&trident, new_id);
        let Some(fired) = feed_window(&mut dlt, &trident, new_id, &loads, 300) else {
            break; // matured loads stop firing
        };
        matured_pc = Some(fired);
        let action = opt.handle_event(
            0,
            HotEvent::DelinquentLoad { load_pc: fired, trace: new_id },
            &mut trident,
            &mut dlt,
            &code,
        );
        opt.commit(0, action, &mut trident, &mut dlt).unwrap();
    }
    let pc = matured_pc.expect("at least one repair event fired");
    assert!(dlt.is_mature(pc), "budget exhaustion sets the mature flag");
    assert!(opt.stats.matured >= 1);
}

#[test]
fn basic_mode_uses_estimated_distance_and_never_repairs() {
    let (mut trident, code, trace) = setup();
    let mut dlt = small_dlt();
    let mut opt = PrefetchOptimizer::new(OptimizerConfig::paper_baseline(SwPrefetchMode::Basic));

    // Observed min exec time 10 cycles; avg miss latency 300 → distance ≈ 30.
    trident.watch.on_enter(trace, 0);
    trident.watch.on_enter(trace, 10);
    let loads = load_indices(&trident, trace);
    let fired = feed_window(&mut dlt, &trident, trace, &loads, 300).unwrap();
    let action = opt.handle_event(
        0,
        HotEvent::DelinquentLoad { load_pc: fired, trace },
        &mut trident,
        &mut dlt,
        &code,
    );
    let pending = match &action {
        PreparedAction::Install(p) => p,
        other => panic!("unexpected {other:?}"),
    };
    let dists: Vec<u8> = pending
        .trace
        .insts
        .iter()
        .filter_map(|ti| match ti.op {
            TraceOp::Real(Inst::Prefetch { dist, .. }) => Some(dist),
            _ => None,
        })
        .collect();
    assert!(!dists.is_empty());
    for d in &dists {
        assert!(*d >= 25 && *d <= 35, "estimated distance ≈ 300/10, got {d}");
    }
    // Basic mode: two prefetches (no same-object grouping merges them).
    assert_eq!(dists.len(), 2, "one prefetch per delinquent load in basic mode");
    let new_id = pending.trace.id;
    opt.commit(0, action, &mut trident, &mut dlt).unwrap();

    // A further event must not repair (matures instead).
    let loads = load_indices(&trident, new_id);
    if let Some(fired) = feed_window(&mut dlt, &trident, new_id, &loads, 300) {
        let action = opt.handle_event(
            0,
            HotEvent::DelinquentLoad { load_pc: fired, trace: new_id },
            &mut trident,
            &mut dlt,
            &code,
        );
        assert!(matches!(action, PreparedAction::Nothing), "basic mode never repairs");
        assert!(dlt.is_mature(fired));
    }
    assert_eq!(opt.stats.repairs, 0);
}
