//! Differential test of the distance-repair state machine: a ~50-line
//! reference model of the paper's §3.5.1 walk (up while the average access
//! latency improves, down when it worsens, within a budget of 2 × max
//! distance, then mature) is driven over the *same* seeded delinquent-load
//! event stream as the real [`PrefetchOptimizer`]. The two must produce
//! identical distance trajectories and identical convergence counts.

use std::collections::HashMap;

use tdo_core::{
    Dlt, DltConfig, OptimizerConfig, PrefetchOptimizer, PreparedAction, SwPrefetchMode,
};
use tdo_isa::{decode, prefetch_distance, AluOp, Asm, Cond, Inst, Reg};
use tdo_rand::Rng;
use tdo_trident::{CodeSource, HotEvent, TraceId, TraceOp, Trident, TridentConfig};

struct MapCode(HashMap<u64, Inst>);

impl CodeSource for MapCode {
    fn fetch_inst(&self, pc: u64) -> Option<Inst> {
        self.0.get(&pc).copied()
    }
}

/// The strided two-load loop of the optimizer flow tests.
fn setup() -> (Trident, MapCode, TraceId) {
    let (r1, r2, r3, r4) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.ldq(r2, r1, 0);
    a.ldq(r3, r1, 8);
    a.lda(r1, r1, 96);
    a.op_imm(AluOp::Sub, r4, 1, r4);
    a.bcond_to(Cond::Ne, r4, "loop");
    a.halt();
    let words = a.assemble().unwrap();
    let code = MapCode(
        words
            .iter()
            .enumerate()
            .map(|(i, w)| (0x1000 + i as u64 * 8, decode(*w).unwrap()))
            .collect(),
    );
    let mut cfg = TridentConfig::paper_baseline();
    cfg.code_cache_base = 0x10_0000;
    let mut trident = Trident::new(cfg);
    let pending = trident.prepare_install(0, &code, 0x1000, 0b1, 1).unwrap();
    trident.commit_install(0, &pending).unwrap();
    let id = pending.trace.id;
    (trident, code, id)
}

const WINDOW: u32 = 32;
const L1_LATENCY: u64 = 3; // OptimizerConfig::paper_baseline
const MIN_EXEC_TIME: u64 = 70; // chosen so max distance = 350/70 = 5

fn small_dlt() -> Dlt {
    Dlt::new(DltConfig {
        entries: 64,
        assoc: 2,
        window: WINDOW,
        miss_threshold: 4,
        latency_threshold: 100,
        partial_min_accesses: 8,
        ..DltConfig::paper_baseline()
    })
}

/// One monitoring window: every load at `indices` commits `WINDOW` times,
/// missing every other access at `miss_latency` cycles. Returns the PC that
/// raised the delinquent-load event, if any.
fn feed_window(
    dlt: &mut Dlt,
    trident: &Trident,
    trace: TraceId,
    indices: &[usize],
    miss_latency: u64,
) -> Option<u64> {
    let t = trident.trace(trace).unwrap();
    let mut fired = None;
    for k in 0..u64::from(WINDOW) {
        for &i in indices {
            let pc = t.cc_pc(i);
            if dlt.observe(pc, 0x100_0000 + k * 96 + i as u64 * 8, k % 2 == 0, miss_latency) {
                fired.get_or_insert(pc);
            }
        }
    }
    fired
}

fn load_indices(trident: &Trident, trace: TraceId) -> Vec<usize> {
    trident
        .trace(trace)
        .unwrap()
        .insts
        .iter()
        .enumerate()
        .filter(|(_, ti)| matches!(ti.op, TraceOp::Real(Inst::Load { .. }) if !ti.synthetic))
        .map(|(i, _)| i)
        .collect()
}

/// The window's average *access* latency, computed exactly as the
/// optimizer computes it from the DLT snapshot: misses at the injected
/// latency, hits at the L1 latency.
fn avg_access(miss_latency: u64) -> f64 {
    let misses = f64::from(WINDOW / 2);
    let hits = f64::from(WINDOW) - misses;
    (miss_latency as f64 * misses + hits * L1_LATENCY as f64) / f64::from(WINDOW)
}

/// The reference model: the paper's repair walk, independent of the
/// optimizer's code. `on_event` consumes one delinquent-load event's
/// average access latency and returns the new distance iff it changed
/// (mirroring the optimizer, which emits patches only on a change).
struct RefModel {
    distance: u8,
    max_distance: u8,
    repairs_left: u32,
    prev_avg: Option<f64>,
    mature: bool,
    repairs: u64,
    ups: u64,
    downs: u64,
    matured: u64,
}

impl RefModel {
    fn new(max_distance: u8) -> RefModel {
        RefModel {
            distance: 1,
            max_distance,
            repairs_left: 2 * u32::from(max_distance),
            prev_avg: None,
            mature: false,
            repairs: 0,
            ups: 0,
            downs: 0,
            matured: 0,
        }
    }

    fn on_event(&mut self, avg: f64) -> Option<u8> {
        if self.repairs_left == 0 {
            if !self.mature {
                self.mature = true;
                self.matured += 1;
            }
            return None;
        }
        self.repairs_left -= 1;
        let improve = self.prev_avg.is_none_or(|prev| avg <= prev * 1.02);
        let old = self.distance;
        self.distance = if improve {
            self.distance.saturating_add(1).min(self.max_distance)
        } else {
            self.distance.saturating_sub(1).max(1)
        };
        if self.distance > old {
            self.ups += 1;
        } else if self.distance < old {
            self.downs += 1;
        }
        self.prev_avg = Some(avg);
        if self.repairs_left == 0 {
            self.mature = true;
            self.matured += 1;
        }
        self.repairs += 1;
        (self.distance != old).then_some(self.distance)
    }
}

#[test]
fn optimizer_and_reference_model_walk_identical_trajectories() {
    let (mut trident, code, trace) = setup();
    let mut dlt = small_dlt();
    let mut opt =
        PrefetchOptimizer::new(OptimizerConfig::paper_baseline(SwPrefetchMode::SelfRepair));

    // Pin the max distance (350 / 70 = 5, budget 10) before insertion.
    trident.watch.on_enter(trace, 0);
    trident.watch.on_enter(trace, MIN_EXEC_TIME);

    // Insertion event.
    let loads = load_indices(&trident, trace);
    let fired = feed_window(&mut dlt, &trident, trace, &loads, 300).expect("insertion event");
    let action = opt.handle_event(
        0,
        HotEvent::DelinquentLoad { load_pc: fired, trace },
        &mut trident,
        &mut dlt,
        &code,
    );
    let new_id = match &action {
        PreparedAction::Install(p) => p.trace.id,
        other => panic!("expected install, got {other:?}"),
    };
    opt.commit(0, action, &mut trident, &mut dlt).unwrap();
    trident.watch.on_enter(new_id, 0);
    trident.watch.on_enter(new_id, MIN_EXEC_TIME);

    // Identical seeded event streams drive both machines until the budget
    // matures every load and events stop firing.
    let mut model = RefModel::new(5);
    let mut observed: Vec<Option<u8>> = Vec::new();
    let mut expected: Vec<Option<u8>> = Vec::new();
    let mut rng = Rng::new(0xD1FF);
    for _ in 0..40 {
        let miss_latency = 120 + rng.next_u64() % 300;
        let loads = load_indices(&trident, new_id);
        let Some(fired) = feed_window(&mut dlt, &trident, new_id, &loads, miss_latency) else {
            break; // matured loads no longer raise events
        };
        let action = opt.handle_event(
            0,
            HotEvent::DelinquentLoad { load_pc: fired, trace: new_id },
            &mut trident,
            &mut dlt,
            &code,
        );
        observed.push(match &action {
            PreparedAction::Repair { patches, .. } => {
                Some(prefetch_distance(patches[0].1).unwrap())
            }
            PreparedAction::Nothing => None,
            other => panic!("expected repair or nothing, got {other:?}"),
        });
        expected.push(model.on_event(avg_access(miss_latency)));
        opt.commit(0, action, &mut trident, &mut dlt).unwrap();
    }

    assert_eq!(observed, expected, "distance trajectories must be identical");
    assert!(model.mature, "the budget must run out within the sweep");
    assert_eq!(opt.stats.repairs, model.repairs, "repair counts");
    assert_eq!(opt.stats.distance_up, model.ups, "up-walk counts");
    assert_eq!(opt.stats.distance_down, model.downs, "down-walk counts");
    assert_eq!(opt.stats.matured, model.matured + 1, "real machine matures the partner load too");
    assert_eq!(opt.stats.insertions, 1);
    // The walk must have actually exercised both directions.
    assert!(model.ups > 0 && model.downs > 0, "seed must drive ups and downs: {observed:?}");
}
