//! Prefetch insertion (paper §3.4.2–3.4.3).
//!
//! Builds a re-optimized trace body by splicing software prefetches into a
//! hot trace:
//!
//! * **Stride-based same-object prefetching** — one prefetch per cache
//!   block touched by a same-object group, starting from the group's
//!   minimum offset; members within a line of the previous prefetch are
//!   skipped, and one extra block is prefetched after any skipped load;
//! * **Pointer-load prefetching** — a non-faulting dereference of the
//!   loaded pointer followed by a prefetch through it, covering the objects
//!   one and two iterations ahead.
//!
//! The *basic* mode of the paper's evaluation disables grouping (each
//! delinquent load gets its own prefetch) and pointer dereferencing.

use std::collections::HashMap;

use tdo_isa::{Inst, LoadKind, Reg};
use tdo_trident::{Trace, TraceInst, TraceOp};

use crate::classify::{Classification, LoadClass};

/// What address pattern a planned prefetch group follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupKind {
    /// Stride-predictable: `prefetch (off + stride·distance)(base)`;
    /// repairable by patching the distance.
    Stride,
    /// Pointer dereference: `ldnf` + `prefetch`; not distance-repairable.
    Pointer,
}

/// One planned group of inserted prefetches.
#[derive(Clone, Debug)]
pub struct PlannedGroup {
    /// Representative load (minimum original PC among covered loads);
    /// optimizer state is keyed by this.
    pub rep_orig_pc: u64,
    /// Original PCs of the delinquent loads this group's prefetches cover.
    pub covered_orig_pcs: Vec<u64>,
    /// Indices of the inserted prefetch instructions in the new body.
    pub prefetch_indices: Vec<usize>,
    /// The group stride (0 for pointer groups).
    pub stride: i64,
    /// The kind.
    pub kind: GroupKind,
    /// The initial prefetch distance used.
    pub distance: u8,
    /// For jump-pointer groups: the base offset of the inserted `ldnf`
    /// dereference. The dereference reads the pointer `distance` iterations
    /// ahead (`off = deref_base_off + stride·distance`), and repair patches
    /// the offset just like it patches prefetch distances.
    pub deref_base_off: Option<i64>,
}

/// The result of planning prefetch insertion for one trace.
#[derive(Clone, Debug, Default)]
pub struct InsertionPlan {
    /// The rebuilt trace body.
    pub new_insts: Vec<TraceInst>,
    /// The inserted groups.
    pub groups: Vec<PlannedGroup>,
    /// Original PCs of delinquent loads that could not be prefetched (to be
    /// marked mature in the DLT).
    pub unprefetchable_orig_pcs: Vec<u64>,
}

/// Knobs for [`plan_insertion`].
pub struct InsertOptions<'a> {
    /// Cache line size (64 in the paper).
    pub line_bytes: i64,
    /// Enable same-object grouping (§3.4.2); off in *basic* mode.
    pub same_object: bool,
    /// Enable pointer dereference prefetching (§3.4.3); off in *basic* mode.
    pub pointer_deref: bool,
    /// Initial distance for a group, given the index (into
    /// [`Classification::loads`]) of its representative delinquent load.
    pub distance_of: &'a dyn Fn(usize) -> u8,
    /// Scratch registers available for pointer dereferencing (must be dead
    /// in the surrounding code; the workload ABI reserves r20–r27).
    pub scratch_pool: &'a [Reg],
}

fn clamp_i32(v: i64) -> Option<i32> {
    i32::try_from(v).ok()
}

/// Plans prefetch insertion for the delinquent loads of `trace`.
///
/// Returns `None` when there is nothing to insert (no delinquent load is
/// prefetchable).
#[must_use]
pub fn plan_insertion(
    trace: &Trace,
    class: &Classification,
    opts: &InsertOptions<'_>,
) -> Option<InsertionPlan> {
    // Inserted (instruction, owning group) runs keyed by old-trace index.
    let mut before: HashMap<usize, Vec<(Inst, usize)>> = HashMap::new();
    let mut after: HashMap<usize, Vec<(Inst, usize)>> = HashMap::new();
    let mut groups: Vec<PlannedGroup> = Vec::new();
    let mut unprefetchable: Vec<u64> = Vec::new();

    // Scratch allocation for pointer dereferences.
    let used: std::collections::HashSet<Reg> = trace
        .insts
        .iter()
        .flat_map(|ti| {
            let mut v = Vec::new();
            match ti.op {
                TraceOp::Real(inst) => {
                    v.extend(inst.uses().into_iter().flatten());
                    v.extend(inst.def());
                }
                TraceOp::CondExit { ra, .. } => v.push(ra),
                _ => {}
            }
            v
        })
        .collect();
    let mut scratch = opts.scratch_pool.iter().copied().filter(|r| !used.contains(r));

    let covered_by_group: &mut Vec<bool> = &mut vec![false; class.loads.len()];

    // --- Stride-based (same-object) prefetching ---------------------------
    if opts.same_object {
        for g in &class.groups {
            let Some(stride) = g.stride else { continue };
            let members: Vec<usize> =
                g.members.iter().copied().filter(|&m| class.loads[m].delinquent).collect();
            if members.is_empty() {
                continue;
            }
            let rep = members
                .iter()
                .copied()
                .min_by_key(|&m| trace.insts[class.loads[m].index].orig_pc)
                .expect("non-empty");
            let distance = (opts.distance_of)(rep).max(1);
            let group_anchor =
                members.iter().map(|&m| class.loads[m].index).min().expect("non-empty");
            let Some(stride32) = clamp_i32(stride) else { continue };
            // Each cache block's prefetch is anchored just before the first
            // member load touching that block, spreading a wide group's
            // prefetches across the loop body instead of bursting them (and
            // exhausting the MSHRs) at the trace top.
            let mut line_anchor: HashMap<i64, usize> = HashMap::new();
            for &m in &members {
                let l = class.loads[m].off.div_euclid(opts.line_bytes);
                let e = line_anchor.entry(l).or_insert(usize::MAX);
                *e = (*e).min(class.loads[m].index);
            }

            // Walk delinquent members by offset. A member within the cache
            // block of an earlier prefetch is skipped, but a skipped load
            // may straddle into the next block, so that block is owed one
            // extra prefetch — unless another member already covers it:
            // "this still allows us to skip several loads, and only
            // prefetch each block once" (§3.4.2).
            let line = opts.line_bytes;
            let member_lines: std::collections::BTreeSet<i64> =
                members.iter().map(|&m| class.loads[m].off.div_euclid(line)).collect();
            let mut emitted: Vec<(Inst, usize)> = Vec::new();
            let mut emitted_lines: std::collections::BTreeSet<i64> =
                std::collections::BTreeSet::new();
            let mut owed_extras: std::collections::BTreeSet<i64> =
                std::collections::BTreeSet::new();
            for &m in &members {
                let off = class.loads[m].off;
                let l = off.div_euclid(line);
                if emitted_lines.insert(l) {
                    if let Some(off32) = clamp_i32(off) {
                        emitted.push((
                            Inst::Prefetch {
                                base: g.base,
                                off: off32,
                                stride: stride32,
                                dist: distance,
                            },
                            line_anchor.get(&l).copied().unwrap_or(group_anchor),
                        ));
                    }
                } else if !member_lines.contains(&(l + 1)) {
                    owed_extras.insert(l + 1);
                }
            }
            for l in owed_extras {
                if emitted_lines.contains(&l) {
                    continue;
                }
                if let Some(extra32) = clamp_i32(l * line) {
                    // The extra block rides with the line that owes it.
                    let anchor = line_anchor.get(&(l - 1)).copied().unwrap_or(group_anchor);
                    emitted.push((
                        Inst::Prefetch {
                            base: g.base,
                            off: extra32,
                            stride: stride32,
                            dist: distance,
                        },
                        anchor,
                    ));
                }
            }
            if emitted.is_empty() {
                continue;
            }
            let gi = groups.len();
            for (inst, anchor) in emitted {
                before.entry(anchor).or_default().push((inst, gi));
            }
            groups.push(PlannedGroup {
                rep_orig_pc: trace.insts[class.loads[rep].index].orig_pc,
                covered_orig_pcs: members
                    .iter()
                    .map(|&m| trace.insts[class.loads[m].index].orig_pc)
                    .collect(),
                prefetch_indices: Vec::new(), // filled after splicing
                stride,
                kind: GroupKind::Stride,
                distance,
                deref_base_off: None,
            });
            for &m in &members {
                covered_by_group[m] = true;
            }
        }
    } else {
        // Basic mode: one prefetch per delinquent stride load, no grouping.
        for (li_idx, li) in class.loads.iter().enumerate() {
            if !li.delinquent {
                continue;
            }
            let LoadClass::Stride { stride } = li.class else { continue };
            let (Some(off32), Some(stride32)) = (clamp_i32(li.off), clamp_i32(stride)) else {
                continue;
            };
            let distance = (opts.distance_of)(li_idx).max(1);
            let gi = groups.len();
            let run = before.entry(li.index).or_default();
            run.push((
                Inst::Prefetch { base: li.base, off: off32, stride: stride32, dist: distance },
                gi,
            ));
            groups.push(PlannedGroup {
                rep_orig_pc: trace.insts[li.index].orig_pc,
                covered_orig_pcs: vec![trace.insts[li.index].orig_pc],
                prefetch_indices: Vec::new(),
                stride,
                kind: GroupKind::Stride,
                distance,
                deref_base_off: None,
            });
            covered_by_group[li_idx] = true;
        }
    }

    // --- Pointer-load prefetching -----------------------------------------
    for (li_idx, li) in class.loads.iter().enumerate() {
        let covered = covered_by_group[li_idx];
        if !li.is_pointer {
            if li.delinquent && !covered {
                unprefetchable.push(trace.insts[li.index].orig_pc);
            }
            continue;
        }
        if !opts.pointer_deref {
            if li.delinquent && !covered {
                unprefetchable.push(trace.insts[li.index].orig_pc);
            }
            continue;
        }
        // Delinquent loads through the pointer this load produces, not
        // already covered by a stride group (e.g. the fields of the object
        // an array-of-pointers walk reaches). Note the pointer load itself
        // need not be delinquent — a hardware-covered pointer-array walk
        // still exposes the objects it points to (paper §3.4.1: "multiple
        // loads using the same base register which has been identified as a
        // pointer" become a same-object group).
        let dest_members: Vec<usize> = if opts.same_object {
            class
                .groups
                .iter()
                .filter(|g| g.base == li.dest)
                .flat_map(|g| g.members.iter().copied())
                .filter(|&m| class.loads[m].delinquent && !covered_by_group[m] && m != li_idx)
                .collect()
        } else {
            Vec::new()
        };
        // Work exists when the pointer load itself is an uncovered
        // delinquent, or the dereferenced object has uncovered delinquents.
        let needs_self = li.delinquent && !covered;
        if !needs_self && dest_members.is_empty() {
            continue;
        }
        let Some(rt) = scratch.next() else {
            unprefetchable.push(trace.insts[li.index].orig_pc);
            continue;
        };
        // Dereference source: jump-pointer style for stride-covered pointer
        // loads (read the pointer `distance` iterations ahead — the offset is
        // repairable just like a prefetch distance), classic
        // double-dereference for pointer chases.
        let (deref_base, deref_base_off, jp_stride) = match li.class {
            LoadClass::Stride { stride } => (li.base, Some(li.off), stride),
            _ => (li.dest, None, 0),
        };
        let distance =
            if deref_base_off.is_some() { u8::max((opts.distance_of)(li_idx), 1) } else { 0 };
        let deref_off = match deref_base_off {
            Some(base_off) => base_off + jp_stride * i64::from(distance),
            None => li.off,
        };
        let mut emitted = vec![Inst::Load {
            ra: rt,
            rb: deref_base,
            off: deref_off,
            kind: LoadKind::NonFaulting,
        }];
        let mut covered_pcs = Vec::new();
        if needs_self {
            covered_pcs.push(trace.insts[li.index].orig_pc);
            if let Some(off32) = clamp_i32(li.off) {
                emitted.push(Inst::Prefetch { base: rt, off: off32, stride: 0, dist: 0 });
            }
        }
        // Prefetch the delinquent fields reachable through the dereferenced
        // pointer, one prefetch per cache line.
        let mut last: Option<i64> = None;
        for &m in &dest_members {
            let mo = class.loads[m].off;
            if last.is_some_and(|l| (mo - l).abs() < opts.line_bytes) {
                covered_by_group[m] = true;
                covered_pcs.push(trace.insts[class.loads[m].index].orig_pc);
                continue;
            }
            if let Some(mo32) = clamp_i32(mo) {
                emitted.push(Inst::Prefetch { base: rt, off: mo32, stride: 0, dist: 0 });
                last = Some(mo);
                covered_by_group[m] = true;
                covered_pcs.push(trace.insts[class.loads[m].index].orig_pc);
            }
        }
        if emitted.len() < 2 || covered_pcs.is_empty() {
            // Nothing ended up prefetched through the dereference.
            unprefetchable.push(trace.insts[li.index].orig_pc);
            continue;
        }
        // The representative is a load whose events will repair the group:
        // the first covered load.
        let rep_orig_pc = covered_pcs[0];
        let gi = groups.len();
        let run = after.entry(li.index).or_default();
        for inst in emitted {
            run.push((inst, gi));
        }
        groups.push(PlannedGroup {
            rep_orig_pc,
            covered_orig_pcs: covered_pcs,
            prefetch_indices: Vec::new(),
            stride: jp_stride,
            kind: GroupKind::Pointer,
            distance,
            deref_base_off,
        });
    }

    if groups.is_empty() {
        return None;
    }

    // --- Splice ------------------------------------------------------------
    // Synthetic instructions carry their group representative's original PC,
    // which is how the repair path finds a group's prefetches (and its
    // dereference load) in the installed trace.
    let inserted: usize = before.values().chain(after.values()).map(Vec::len).sum();
    let mut new_insts: Vec<TraceInst> = Vec::with_capacity(trace.insts.len() + inserted);
    let push_synthetic =
        |new_insts: &mut Vec<TraceInst>, groups: &mut Vec<PlannedGroup>, inst: Inst, gi: usize| {
            let idx = new_insts.len();
            if matches!(inst, Inst::Prefetch { .. }) {
                groups[gi].prefetch_indices.push(idx);
            }
            new_insts.push(TraceInst {
                op: TraceOp::Real(inst),
                orig_pc: groups[gi].rep_orig_pc,
                weight: 0,
                synthetic: true,
            });
        };
    for (i, ti) in trace.insts.iter().enumerate() {
        if let Some(run) = before.get(&i) {
            for (inst, gi) in run {
                push_synthetic(&mut new_insts, &mut groups, *inst, *gi);
            }
        }
        new_insts.push(*ti);
        if let Some(run) = after.get(&i) {
            for (inst, gi) in run {
                push_synthetic(&mut new_insts, &mut groups, *inst, *gi);
            }
        }
    }

    Some(InsertionPlan { new_insts, groups, unprefetchable_orig_pcs: unprefetchable })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::dlt::{Dlt, DltConfig};
    use tdo_isa::Cond;
    use tdo_trident::TraceId;

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    fn ti(op: TraceOp, pc: u64) -> TraceInst {
        TraceInst { op, orig_pc: pc, weight: 1, synthetic: false }
    }

    const SCRATCH: [Reg; 4] = [Reg::int(20), Reg::int(21), Reg::int(22), Reg::int(23)];

    fn dlt_all_delinquent(trace: &Trace) -> Dlt {
        let mut d = Dlt::new(DltConfig {
            entries: 64,
            assoc: 2,
            window: 16,
            miss_threshold: 2,
            latency_threshold: 100,
            partial_min_accesses: 8,
            ..DltConfig::paper_baseline()
        });
        for (i, t) in trace.insts.iter().enumerate() {
            if matches!(t.op, TraceOp::Real(Inst::Load { .. })) {
                for k in 0..16u64 {
                    d.observe(trace.cc_pc(i), 0x5_0000 + k * 8, k % 2 == 0, 300);
                }
            }
        }
        d
    }

    fn opts<'a>(
        same_object: bool,
        pointer_deref: bool,
        dist: &'a dyn Fn(usize) -> u8,
    ) -> InsertOptions<'a> {
        InsertOptions {
            line_bytes: 64,
            same_object,
            pointer_deref,
            distance_of: dist,
            scratch_pool: &SCRATCH,
        }
    }

    /// loop over an object with fields at 0, 8, 80; base strides by 96.
    fn object_loop() -> Trace {
        Trace {
            id: TraceId(0),
            head: 0x1000,
            insts: vec![
                ti(
                    TraceOp::Real(Inst::Load { ra: r(2), rb: r(1), off: 0, kind: LoadKind::Int }),
                    0x1000,
                ),
                ti(
                    TraceOp::Real(Inst::Load { ra: r(3), rb: r(1), off: 8, kind: LoadKind::Int }),
                    0x1008,
                ),
                ti(
                    TraceOp::Real(Inst::Load { ra: r(4), rb: r(1), off: 80, kind: LoadKind::Int }),
                    0x1010,
                ),
                ti(TraceOp::Real(Inst::Lda { ra: r(1), rb: r(1), imm: 96 }), 0x1018),
                ti(TraceOp::CondExit { cond: Cond::Eq, ra: r(5), to: 0x2000 }, 0x1020),
                ti(TraceOp::LoopBack, 0x1028),
            ],
            is_loop: true,
            cc_addr: 0x10_0000,
        }
    }

    #[test]
    fn same_object_group_skips_within_line_and_adds_extra_block() {
        let t = object_loop();
        let dlt = dlt_all_delinquent(&t);
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        let plan = plan_insertion(&t, &c, &opts(true, true, &|_| 1)).expect("inserts");
        assert_eq!(plan.groups.len(), 1);
        let g = &plan.groups[0];
        assert_eq!(g.kind, GroupKind::Stride);
        assert_eq!(g.stride, 96);
        // Offsets 0 and 8 share a line: one prefetch at 0, load at 8 is
        // skipped. The skipped load owes the next block (64..128), but the
        // member at offset 80 already prefetches that block — each block is
        // prefetched once (§3.4.2).
        let pf_offs: Vec<i32> = g
            .prefetch_indices
            .iter()
            .map(|&i| match plan.new_insts[i].op {
                TraceOp::Real(Inst::Prefetch { off, .. }) => off,
                ref other => panic!("not a prefetch: {other:?}"),
            })
            .collect();
        assert_eq!(pf_offs, vec![0, 80]);
        // All inserted before the first member load, weight 0, synthetic.
        for &i in &g.prefetch_indices {
            assert!(plan.new_insts[i].synthetic);
            assert_eq!(plan.new_insts[i].weight, 0);
        }
        // Body grew by exactly the prefetches.
        assert_eq!(plan.new_insts.len(), t.insts.len() + 2);
        assert!(plan.unprefetchable_orig_pcs.is_empty());
    }

    #[test]
    fn basic_mode_emits_one_prefetch_per_load_without_grouping() {
        let t = object_loop();
        let dlt = dlt_all_delinquent(&t);
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        let plan = plan_insertion(&t, &c, &opts(false, false, &|_| 3)).expect("inserts");
        assert_eq!(plan.groups.len(), 3, "one singleton group per delinquent load");
        for g in &plan.groups {
            assert_eq!(g.prefetch_indices.len(), 1);
            assert_eq!(g.distance, 3);
        }
        assert_eq!(plan.new_insts.len(), t.insts.len() + 3);
    }

    #[test]
    fn pointer_chase_gets_deref_pair() {
        let t = Trace {
            id: TraceId(1),
            head: 0x1000,
            insts: vec![
                ti(
                    TraceOp::Real(Inst::Load { ra: r(1), rb: r(1), off: 8, kind: LoadKind::Int }),
                    0x1000,
                ),
                ti(TraceOp::CondExit { cond: Cond::Eq, ra: r(1), to: 0x2000 }, 0x1008),
                ti(TraceOp::LoopBack, 0x1010),
            ],
            is_loop: true,
            cc_addr: 0x10_0000,
        };
        // DLT with NON-stride addresses so the chain stays Pointer class.
        let mut dlt = Dlt::new(DltConfig {
            entries: 64,
            assoc: 2,
            window: 16,
            miss_threshold: 2,
            latency_threshold: 100,
            partial_min_accesses: 8,
            ..DltConfig::paper_baseline()
        });
        let mut x = 1u64;
        for _ in 0..16 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            dlt.observe(t.cc_pc(0), 0x10_0000 + (x % 100_000), true, 300);
        }
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert_eq!(c.loads[0].class, LoadClass::Pointer);
        let plan = plan_insertion(&t, &c, &opts(true, true, &|_| 1)).expect("inserts");
        assert_eq!(plan.groups.len(), 1);
        let g = &plan.groups[0];
        assert_eq!(g.kind, GroupKind::Pointer);
        // ldnf + prefetch inserted right after the load.
        match plan.new_insts[1].op {
            TraceOp::Real(Inst::Load { ra, rb, off, kind: LoadKind::NonFaulting }) => {
                assert_eq!(rb, r(1), "dereference the loaded pointer");
                assert_eq!(off, 8);
                assert!(SCRATCH.contains(&ra));
            }
            ref other => panic!("expected ldnf, got {other:?}"),
        }
        match plan.new_insts[2].op {
            TraceOp::Real(Inst::Prefetch { base, off, .. }) => {
                assert!(SCRATCH.contains(&base));
                assert_eq!(off, 8);
            }
            ref other => panic!("expected prefetch, got {other:?}"),
        }
        assert_eq!(g.prefetch_indices, vec![2], "the ldnf is not a repair target");
    }

    #[test]
    fn pointer_loads_without_deref_are_unprefetchable() {
        let t = Trace {
            id: TraceId(2),
            head: 0x1000,
            insts: vec![
                ti(
                    TraceOp::Real(Inst::Load { ra: r(1), rb: r(1), off: 8, kind: LoadKind::Int }),
                    0x1000,
                ),
                ti(TraceOp::LoopBack, 0x1008),
            ],
            is_loop: true,
            cc_addr: 0x10_0000,
        };
        let mut dlt = Dlt::new(DltConfig {
            entries: 64,
            assoc: 2,
            window: 16,
            miss_threshold: 2,
            latency_threshold: 100,
            partial_min_accesses: 8,
            ..DltConfig::paper_baseline()
        });
        let mut x = 7u64;
        for _ in 0..16 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            dlt.observe(t.cc_pc(0), x % 1_000_000, true, 300);
        }
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert!(plan_insertion(&t, &c, &opts(false, false, &|_| 1)).is_none());
    }

    #[test]
    fn nothing_to_insert_when_no_load_is_delinquent() {
        let t = object_loop();
        let dlt = Dlt::new(DltConfig::paper_baseline());
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert!(plan_insertion(&t, &c, &opts(true, true, &|_| 1)).is_none());
    }

    #[test]
    fn scratch_exhaustion_matures_pointer_loads() {
        // Four independent pointer chases but a 1-register scratch pool.
        let mut insts = Vec::new();
        for (i, reg) in [1u8, 2, 3].into_iter().enumerate() {
            insts.push(ti(
                TraceOp::Real(Inst::Load { ra: r(reg), rb: r(reg), off: 8, kind: LoadKind::Int }),
                0x1000 + i as u64 * 8,
            ));
        }
        insts.push(ti(TraceOp::LoopBack, 0x1030));
        let t = Trace { id: TraceId(3), head: 0x1000, insts, is_loop: true, cc_addr: 0x10_0000 };
        let mut dlt = Dlt::new(DltConfig {
            entries: 64,
            assoc: 2,
            window: 16,
            miss_threshold: 2,
            latency_threshold: 100,
            partial_min_accesses: 8,
            ..DltConfig::paper_baseline()
        });
        let mut x = 7u64;
        for i in 0..3 {
            for _ in 0..16 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                dlt.observe(t.cc_pc(i), x % 1_000_000, true, 300);
            }
        }
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        let pool = [Reg::int(20)];
        let o = InsertOptions {
            line_bytes: 64,
            same_object: true,
            pointer_deref: true,
            distance_of: &|_| 1,
            scratch_pool: &pool,
        };
        let plan = plan_insertion(&t, &c, &o).expect("one chase covered");
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.unprefetchable_orig_pcs.len(), 2, "two chases lack scratch");
    }
}
