//! The decision-audit ledger: a bounded ring of structured records, one per
//! runtime adaptation decision — every in-place distance repair the
//! optimizer performs and every arm switch the policy controller commits.
//!
//! The paper's self-repair story (§3.3, Figure 7) is a *trajectory*: a
//! group's distance walks up while latency improves and backs off when it
//! worsens. Aggregate counters (`repairs`, `distance_up`) prove the loop
//! ran but cannot explain any single decision. The ledger keeps the
//! evidence: who triggered it, what changed, and the windowed measurements
//! that justified it — rendered by `tdo why` and persisted with results.
//!
//! Records are fixed-width integer words (milli/×100 units, no floats), so
//! encoded ledgers are byte-deterministic and digest-comparable across
//! serial and parallel runs. The ring is always-on: pushes happen only on
//! repair/switch events — control-plane occurrences orders of magnitude
//! rarer than simulated cycles — so it stays off the hot path by
//! construction.

/// Retained records per run; older decisions fall off the front.
pub const LEDGER_CAPACITY: usize = 256;

/// Encoded words per [`LedgerRecord`].
pub const LEDGER_RECORD_WORDS: usize = 10;

/// What kind of adaptation decision a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LedgerKind {
    /// The optimizer patched a prefetch group's distance in place; `old` /
    /// `new` are distances, evidence is average access latency ×100.
    Repair,
    /// The policy controller installed a different prefetcher arm; `old` /
    /// `new` are candidate indices, evidence is the closing epoch's
    /// milli-IPC / milli-MPKI.
    ArmSwitch,
}

impl LedgerKind {
    /// Stable integer code used by the codec.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            LedgerKind::Repair => 0,
            LedgerKind::ArmSwitch => 1,
        }
    }

    /// Inverse of [`LedgerKind::code`].
    #[must_use]
    pub fn from_code(code: u64) -> Option<LedgerKind> {
        match code {
            0 => Some(LedgerKind::Repair),
            1 => Some(LedgerKind::ArmSwitch),
            _ => None,
        }
    }
}

/// One audited decision. All fields are integers; interpretation of
/// `old`/`new` and the evidence pair depends on `kind` (see [`LedgerKind`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerRecord {
    /// Simulated cycle the decision was taken.
    pub cycle: u64,
    /// Decision kind.
    pub kind: LedgerKind,
    /// Triggering group: representative load PC (repair) or 0 (arm switch).
    pub group: u64,
    /// Triggering member load PC (repair) or 0 (arm switch).
    pub pc: u64,
    /// Value before: distance (repair) or candidate index (arm switch).
    pub old: u64,
    /// Value after.
    pub new: u64,
    /// Primary evidence: avg access latency ×100 (repair) or milli-IPC.
    pub evidence_a: u64,
    /// Secondary evidence: previous avg latency ×100, 0 on the group's
    /// first repair (repair) or milli-MPKI (arm switch).
    pub evidence_b: u64,
    /// The decision rule's margin in milli-units: the repair tolerance, or
    /// the controller's hysteresis (sweep commit) / degrade (re-sweep)
    /// threshold; 0 for an unconditional sampling-sweep advance.
    pub margin_milli: u64,
    /// Ordinal of the decision window: controller epochs closed so far, or
    /// the group's remaining repair budget after this repair.
    pub epoch: u64,
}

impl LedgerRecord {
    /// Fixed-width integer encoding, [`LEDGER_RECORD_WORDS`] long.
    #[must_use]
    pub fn encode(&self) -> [u64; LEDGER_RECORD_WORDS] {
        [
            self.cycle,
            self.kind.code(),
            self.group,
            self.pc,
            self.old,
            self.new,
            self.evidence_a,
            self.evidence_b,
            self.margin_milli,
            self.epoch,
        ]
    }

    /// Inverse of [`LedgerRecord::encode`]; `None` on a short slice or an
    /// unknown kind code.
    #[must_use]
    pub fn decode(words: &[u64]) -> Option<LedgerRecord> {
        if words.len() < LEDGER_RECORD_WORDS {
            return None;
        }
        Some(LedgerRecord {
            cycle: words[0],
            kind: LedgerKind::from_code(words[1])?,
            group: words[2],
            pc: words[3],
            old: words[4],
            new: words[5],
            evidence_a: words[6],
            evidence_b: words[7],
            margin_milli: words[8],
            epoch: words[9],
        })
    }
}

/// The bounded ring itself: keeps the last [`LEDGER_CAPACITY`] records and
/// counts everything ever appended, so a full ring is visible as
/// `appended() > len()`.
#[derive(Clone, Debug, Default)]
pub struct DecisionLedger {
    records: std::collections::VecDeque<LedgerRecord>,
    appended: u64,
}

impl DecisionLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> DecisionLedger {
        DecisionLedger::default()
    }

    /// Appends a record, evicting the oldest when the ring is full.
    pub fn push(&mut self, record: LedgerRecord) {
        if self.records.len() == LEDGER_CAPACITY {
            self.records.pop_front();
        }
        self.records.push_back(record);
        self.appended += 1;
    }

    /// Records ever pushed (≥ [`DecisionLedger::len`] once the ring wraps).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Retained record count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was ever retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Retained records, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<LedgerRecord> {
        self.records.iter().copied().collect()
    }
}

/// FNV-1a digest of a record slice's encoded words — the determinism
/// fingerprint compared across serial and `--jobs N` runs.
#[must_use]
pub fn ledger_digest(records: &[LedgerRecord]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in records {
        for w in r.encode() {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: u64) -> LedgerRecord {
        LedgerRecord {
            cycle,
            kind: LedgerKind::Repair,
            group: 0x400,
            pc: 0x404,
            old: 2,
            new: 3,
            evidence_a: 18_250,
            evidence_b: 19_900,
            margin_milli: 20,
            epoch: 7,
        }
    }

    #[test]
    fn records_round_trip_and_reject_bad_kinds() {
        let r = LedgerRecord { kind: LedgerKind::ArmSwitch, ..record(99) };
        assert_eq!(LedgerRecord::decode(&r.encode()), Some(r));
        let mut words = record(1).encode();
        words[1] = 2;
        assert_eq!(LedgerRecord::decode(&words), None, "unknown kind code");
        assert_eq!(LedgerRecord::decode(&words[..5]), None, "short slice");
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_the_appended_count() {
        let mut l = DecisionLedger::new();
        for c in 0..(LEDGER_CAPACITY as u64 + 10) {
            l.push(record(c));
        }
        assert_eq!(l.len(), LEDGER_CAPACITY);
        assert_eq!(l.appended(), LEDGER_CAPACITY as u64 + 10);
        assert_eq!(l.records().first().map(|r| r.cycle), Some(10));
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = [record(1), record(2)];
        let b = [record(2), record(1)];
        assert_eq!(ledger_digest(&a), ledger_digest(&a));
        assert_ne!(ledger_digest(&a), ledger_digest(&b));
        assert_ne!(ledger_digest(&a), ledger_digest(&a[..1]));
        assert_eq!(ledger_digest(&[]), 0xcbf2_9ce4_8422_2325);
    }
}
