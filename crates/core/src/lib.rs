//! # tdo-core — the self-repairing software prefetcher
//!
//! The primary contribution of *"A Self-Repairing Prefetcher in an
//! Event-Driven Dynamic Optimization Framework"* (CGO 2006), built on the
//! Trident substrate (`tdo-trident`):
//!
//! * [`dlt`] — the **Delinquent Load Table**, the hardware monitor that
//!   tracks per-load access/miss counters, total miss latency, stride and
//!   stride confidence, and the mature flag, raising *delinquent load*
//!   events when a hot-trace load misses often with high latency;
//! * [`mod@classify`] — delinquent-load classification into *Stride*, *Pointer*
//!   and *Same Object* classes;
//! * [`insert`] — prefetch insertion: stride-based same-object prefetching
//!   with cache-line skipping (plus one extra block after a skipped load)
//!   and pointer-dereference prefetching through non-faulting loads;
//! * [`optimizer`] — the event handler the helper thread runs: insertion on
//!   the first event, and **self-repair** afterwards — walking a group's
//!   prefetch distance up while the load's average access latency improves,
//!   backing off when it worsens, patching only the distance bits of the
//!   installed prefetch instructions, and maturing loads whose repair
//!   budget (2 × maximum distance) is spent.
//!
//! ```
//! use tdo_core::{Dlt, DltConfig};
//!
//! // A hot-trace load missing to memory every other access becomes
//! // delinquent at the end of its 256-access monitoring window.
//! let mut dlt = Dlt::new(DltConfig::paper_baseline());
//! let mut event = false;
//! for i in 0..256u64 {
//!     event |= dlt.observe(0x10_0000, 0x8000 + i * 64, i % 2 == 0, 350);
//! }
//! assert!(event);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod classify;
pub mod dlt;
pub mod insert;
pub mod ledger;
pub mod optimizer;

pub use classify::{classify, Classification, LoadClass, LoadInfo, ObjectGroup};
pub use dlt::{Dlt, DltConfig, DltEntry, LoadSnapshot};
pub use insert::{plan_insertion, GroupKind, InsertOptions, InsertionPlan, PlannedGroup};
pub use ledger::{
    ledger_digest, DecisionLedger, LedgerKind, LedgerRecord, LEDGER_CAPACITY, LEDGER_RECORD_WORDS,
};
pub use optimizer::{
    GroupState, OptimizerConfig, OptimizerStats, PrefetchOptimizer, PreparedAction, SwPrefetchMode,
    REPAIR_TOLERANCE_MILLI,
};
