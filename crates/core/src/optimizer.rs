//! The dynamic prefetch optimizer (paper §3.4–3.5): the code the helper
//! thread runs on a delinquent-load event.
//!
//! First event for a load → identify *all* delinquent loads in the trace,
//! classify them, and re-install the trace with prefetches spliced in.
//! Subsequent events for a prefetched, stride-predictable load → *repair*:
//! patch the distance bits of its group's prefetch instructions in place,
//! walking the distance up while the load's average access latency improves
//! and backing off when it worsens, within a repair budget of twice the
//! maximum distance (after which the load is *mature*).

use std::collections::HashMap;

use tdo_isa::{encode, patch_prefetch_distance, Inst, Reg, Word};
use tdo_obs::{Event, LoadClassKind, PrefetchGroupKind, SharedProbe};
use tdo_trident::{
    CodeSource, HotEvent, InstallError, Patch, PendingInstall, TraceId, TraceOp, Trident,
};

use crate::classify::{classify, LoadClass};
use crate::dlt::Dlt;
use crate::insert::{plan_insertion, GroupKind, InsertOptions};

/// Software prefetching modes evaluated in the paper (Figure 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwPrefetchMode {
    /// No software prefetching.
    Off,
    /// Prior-work baseline: per-load prefetches at an estimated fixed
    /// distance (eq. 2), no grouping, no repair.
    Basic,
    /// Adds same-object grouping and pointer dereferencing; distance still
    /// estimated once and fixed.
    WholeObject,
    /// The paper's contribution: whole-object insertion starting at
    /// distance 1, adaptively repaired.
    SelfRepair,
}

impl SwPrefetchMode {
    fn grouping(self) -> bool {
        matches!(self, SwPrefetchMode::WholeObject | SwPrefetchMode::SelfRepair)
    }

    fn repairs(self) -> bool {
        self == SwPrefetchMode::SelfRepair
    }
}

/// Optimizer configuration.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Mode.
    pub mode: SwPrefetchMode,
    /// Cache line size in bytes.
    pub line_bytes: i64,
    /// L1 hit latency (for average-access-latency computation).
    pub l1_latency: u64,
    /// Full memory access latency (numerator of the maximum distance).
    pub mem_latency: u64,
    /// Scratch registers for pointer dereferencing (dead by workload ABI).
    pub scratch_pool: Vec<Reg>,
    /// Use the estimated initial distance even in self-repair mode (the
    /// paper's §3.5.1 alternate strategy; found equivalent).
    pub estimated_initial_distance: bool,
}

impl OptimizerConfig {
    /// The paper's configuration for a given mode.
    #[must_use]
    pub fn paper_baseline(mode: SwPrefetchMode) -> OptimizerConfig {
        OptimizerConfig {
            mode,
            line_bytes: 64,
            l1_latency: 3,
            mem_latency: 350,
            scratch_pool: (20..=27).map(Reg::int).collect(),
            estimated_initial_distance: !matches!(mode, SwPrefetchMode::SelfRepair),
        }
    }
}

/// Per-group repair state, kept in the optimizer's memory buffer
/// (paper §3.5.2: repairs left, maximal distance, latency history).
#[derive(Clone, Debug)]
pub struct GroupState {
    /// Trace currently carrying the group's prefetches.
    pub trace: TraceId,
    /// Current prefetch distance.
    pub distance: u8,
    /// Maximum distance = memory latency / trace minimal execution time.
    pub max_distance: u8,
    /// Remaining repair budget (starts at 2 × max distance).
    pub repairs_left: u32,
    /// Previous average access latency **per member load** (keyed by the
    /// load's original PC): the improve/worsen decision must compare a
    /// load's latency with its *own* history, not with another member's.
    pub prev_avg_latency: Vec<(u64, f64)>,
    /// The group's stride.
    pub stride: i64,
    /// Whether repairs still apply (groups with a known stride).
    pub repairable: bool,
    /// For jump-pointer groups: base offset of the dereference load, whose
    /// encoded offset is repaired to `deref_base_off + stride·distance`.
    pub deref_base_off: Option<i64>,
    /// Cycle the group's prefetches were first inserted.
    pub inserted_at: u64,
    /// Cycle of the last distance change (equals `inserted_at` while the
    /// initial distance still stands). `last_change_at - inserted_at` is the
    /// group's cycles-to-converge.
    pub last_change_at: u64,
}

/// What the optimizer decided for one event; committed at helper completion.
#[derive(Debug)]
pub enum PreparedAction {
    /// Replace the trace with a prefetch-augmented version.
    Install(PendingInstall),
    /// Patch prefetch distances in place.
    Repair {
        /// The trace being repaired.
        trace: TraceId,
        /// (instruction index, new encoded word) pairs.
        patches: Vec<(usize, Word)>,
    },
    /// Nothing to do (load matured, not prefetchable, or stats vanished).
    Nothing,
}

/// Counters for the optimizer.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizerStats {
    /// Delinquent-load events handled.
    pub events: u64,
    /// Trace re-installations with prefetches.
    pub insertions: u64,
    /// Prefetch instructions inserted.
    pub prefetches_inserted: u64,
    /// In-place distance repairs performed.
    pub repairs: u64,
    /// Distance increments during repair.
    pub distance_up: u64,
    /// Distance decrements during repair.
    pub distance_down: u64,
    /// Loads matured (budget exhausted or unprefetchable).
    pub matured: u64,
    /// Prefetch groups tracked over the run (filled by
    /// [`PrefetchOptimizer::finalize`]).
    pub groups: u64,
    /// Sum over groups of cycles from insertion to last distance change
    /// (filled by [`PrefetchOptimizer::finalize`]).
    pub converge_cycles_total: u64,
    /// The slowest group's cycles-to-converge (filled by
    /// [`PrefetchOptimizer::finalize`]).
    pub converge_cycles_max: u64,
}

/// The prefetch optimizer.
pub struct PrefetchOptimizer {
    cfg: OptimizerConfig,
    /// Group state keyed by (trace head, representative load original PC) —
    /// stable across trace re-installations.
    states: HashMap<(u64, u64), GroupState>,
    /// Member original PC → representative PC, per trace head.
    member_to_rep: HashMap<(u64, u64), u64>,
    /// Counters.
    pub stats: OptimizerStats,
    /// Decision-audit ledger: one record per in-place distance repair.
    pub ledger: crate::DecisionLedger,
    probe: SharedProbe,
    probe_on: bool,
    finalized: bool,
}

/// The repair rule's noise tolerance (the `avg <= prev * 1.02` test) in
/// milli-units, recorded as each repair record's decision margin.
pub const REPAIR_TOLERANCE_MILLI: u64 = 20;

impl PrefetchOptimizer {
    /// Builds an optimizer.
    #[must_use]
    pub fn new(cfg: OptimizerConfig) -> PrefetchOptimizer {
        PrefetchOptimizer {
            cfg,
            states: HashMap::new(),
            member_to_rep: HashMap::new(),
            stats: OptimizerStats::default(),
            ledger: crate::DecisionLedger::new(),
            probe: tdo_obs::null_probe(),
            probe_on: false,
            finalized: false,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// Attaches an observability probe; classification, insertion, repair
    /// and maturity events are recorded through it from now on.
    pub fn set_probe(&mut self, probe: SharedProbe) {
        self.probe_on = probe.borrow().enabled();
        self.probe = probe;
    }

    /// Records one event when a probe is attached.
    fn emit(&self, now: u64, ev: Event) {
        if self.probe_on {
            self.probe.borrow_mut().record(now, ev);
        }
    }

    /// Folds per-group convergence figures into [`OptimizerStats`]. Called
    /// once at end of simulation; further calls are no-ops.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        for st in self.states.values() {
            self.stats.groups += 1;
            let c = st.last_change_at.saturating_sub(st.inserted_at);
            self.stats.converge_cycles_total += c;
            self.stats.converge_cycles_max = self.stats.converge_cycles_max.max(c);
        }
    }

    /// The repair state for the group covering `orig_pc` in the trace headed
    /// at `head` (test/inspection aid).
    #[must_use]
    pub fn group_state(&self, head: u64, orig_pc: u64) -> Option<&GroupState> {
        let rep = self.member_to_rep.get(&(head, orig_pc)).copied().unwrap_or(orig_pc);
        self.states.get(&(head, rep))
    }

    /// Whether the load at `orig_pc` (in the trace headed at `head`) is
    /// covered by an inserted prefetch group — the Figure 4 "potentially
    /// software prefetched" criterion.
    #[must_use]
    pub fn is_covered(&self, head: u64, orig_pc: u64) -> bool {
        self.member_to_rep.contains_key(&(head, orig_pc))
    }

    /// Refreshes every group's repair budget and latency history —
    /// the companion to [`Dlt::clear_all_mature`] for the §3.5.2
    /// phase-change extension: a re-opened load must be allowed to re-tune,
    /// and its pre-phase latency history no longer applies.
    pub fn refresh_budgets(&mut self) {
        for st in self.states.values_mut() {
            st.repairs_left = st.repairs_left.max(2 * u32::from(st.max_distance));
            st.prev_avg_latency.clear();
        }
    }

    /// Handles one delinquent-load event raised at cycle `now`. DLT
    /// bookkeeping (window clears, mature flags) happens immediately — the
    /// helper thread owns those counters — while code changes are returned
    /// as a [`PreparedAction`] for the caller to commit when the helper job
    /// completes.
    pub fn handle_event(
        &mut self,
        now: u64,
        ev: HotEvent,
        trident: &mut Trident,
        dlt: &mut Dlt,
        code: &impl CodeSource,
    ) -> PreparedAction {
        let HotEvent::DelinquentLoad { load_pc, trace: trace_id } = ev else {
            return PreparedAction::Nothing;
        };
        self.stats.events += 1;
        let Some(trace) = trident.trace(trace_id) else {
            return PreparedAction::Nothing;
        };
        let Some(index) = trace.index_of_cc(load_pc) else {
            return PreparedAction::Nothing;
        };
        let head = trace.head;
        let orig_pc = trace.insts[index].orig_pc;

        // Repair path: this load's group already has prefetches in place.
        let rep = self.member_to_rep.get(&(head, orig_pc)).copied();
        if let Some(rep_pc) = rep {
            if self.states.contains_key(&(head, rep_pc)) {
                return self.repair(now, head, rep_pc, orig_pc, load_pc, trace_id, trident, dlt);
            }
        }

        // Insertion path.
        self.insert(now, trace_id, trident, dlt, code)
    }

    fn max_distance(&self, trident: &Trident, trace: TraceId) -> (u8, u64) {
        // Max distance = memory access latency / trace minimal execution
        // time (paper §3.5.2). Before any measurement, fall back to an
        // estimate from the trace length at one instruction per cycle.
        let min_time = trident
            .watch
            .min_exec_time(trace)
            .unwrap_or_else(|| trident.trace(trace).map_or(16, |t| t.insts.len() as u64).max(1));
        let d = (self.cfg.mem_latency / min_time.max(1)).clamp(1, 255) as u8;
        (d, min_time)
    }

    fn insert(
        &mut self,
        now: u64,
        trace_id: TraceId,
        trident: &mut Trident,
        dlt: &mut Dlt,
        code: &impl CodeSource,
    ) -> PreparedAction {
        let (max_dist, iter_time) = self.max_distance(trident, trace_id);
        let trace = trident.trace(trace_id).expect("checked by caller");
        let head = trace.head;
        let mut classification = classify(trace, dlt, |i| trace.cc_pc(i));
        // Loads already covered by an installed prefetch group are the
        // repair path's business — masking them here keeps a later
        // insertion (for a newly exposed load) from emitting duplicate
        // prefetches and forking the group state.
        for li in &mut classification.loads {
            if li.delinquent && self.is_covered(head, trace.insts[li.index].orig_pc) {
                li.delinquent = false;
            }
        }
        if self.probe_on {
            for li in &classification.loads {
                if !li.delinquent {
                    continue;
                }
                let (class, stride) = match li.class {
                    LoadClass::Stride { stride } => (LoadClassKind::Stride, stride),
                    LoadClass::Pointer => (LoadClassKind::Pointer, 0),
                    LoadClass::Other => (LoadClassKind::Other, 0),
                };
                let pc = trace.insts[li.index].orig_pc;
                self.emit(now, Event::LoadClassified { pc, class, stride });
            }
        }

        let use_estimate = self.cfg.estimated_initial_distance || !self.cfg.mode.repairs();
        // Estimated initial distance (eq. 2): average miss latency divided
        // by the trace's iteration time, per load, from DLT snapshots.
        let cc_of: Vec<u64> = (0..trace.insts.len()).map(|i| trace.cc_pc(i)).collect();
        let loads = classification.loads.clone();
        let dlt_ref: &Dlt = dlt;
        let mem_latency = self.cfg.mem_latency;
        let estimate = move |li: usize| -> u8 {
            if !use_estimate {
                return 1;
            }
            let pc = cc_of[loads[li].index];
            let avg = dlt_ref.snapshot(pc).map_or(mem_latency as f64, |s| s.avg_miss_latency);
            let d = (avg / iter_time.max(1) as f64).ceil();
            (d as u64).clamp(1, u64::from(max_dist)) as u8
        };

        let opts = InsertOptions {
            line_bytes: self.cfg.line_bytes,
            same_object: self.cfg.mode.grouping(),
            pointer_deref: self.cfg.mode.grouping(),
            distance_of: &estimate,
            scratch_pool: &self.cfg.scratch_pool,
        };
        let Some(plan) = plan_insertion(trace, &classification, &opts) else {
            // Nothing prefetchable: mature every delinquent load so it stops
            // firing events (paper §3.5.2).
            for li in &classification.loads {
                if li.delinquent {
                    let pc = trace.cc_pc(li.index);
                    dlt.set_mature(pc);
                    self.stats.matured += 1;
                    self.emit(now, Event::LoadMatured { pc });
                }
            }
            return PreparedAction::Nothing;
        };

        // DLT bookkeeping for covered and uncovered loads.
        for li in &classification.loads {
            if li.delinquent {
                dlt.clear_window(trace.cc_pc(li.index));
            }
        }
        for pc in &plan.unprefetchable_orig_pcs {
            // Original PC → current cc PC of that load.
            if let Some(i) = trace.insts.iter().position(|t| t.orig_pc == *pc && !t.synthetic) {
                let cc_pc = trace.cc_pc(i);
                dlt.set_mature(cc_pc);
                self.stats.matured += 1;
                self.emit(now, Event::LoadMatured { pc: cc_pc });
            }
        }

        // Record group states keyed by stable original PCs.
        for g in &plan.groups {
            let repairable = (g.kind == GroupKind::Stride
                || (g.kind == GroupKind::Pointer && g.deref_base_off.is_some()))
                && self.cfg.mode.repairs();
            self.states.insert(
                (head, g.rep_orig_pc),
                GroupState {
                    trace: trace_id, // updated to the new id at commit
                    distance: g.distance.max(1),
                    max_distance: max_dist,
                    repairs_left: 2 * u32::from(max_dist),
                    prev_avg_latency: Vec::new(),
                    stride: g.stride,
                    repairable,
                    deref_base_off: g.deref_base_off,
                    inserted_at: now,
                    last_change_at: now,
                },
            );
            for m in &g.covered_orig_pcs {
                self.member_to_rep.insert((head, *m), g.rep_orig_pc);
            }
            self.stats.prefetches_inserted += g.prefetch_indices.len() as u64;
        }
        self.stats.insertions += 1;

        match trident.prepare_reinstall(now, code, trace_id, plan.new_insts) {
            Ok(pending) => {
                if self.probe_on {
                    for g in &plan.groups {
                        let kind = match g.kind {
                            GroupKind::Stride => PrefetchGroupKind::Stride,
                            GroupKind::Pointer => PrefetchGroupKind::Pointer,
                        };
                        self.emit(
                            now,
                            Event::PrefetchInserted {
                                trace: pending.trace.id.0,
                                group: g.rep_orig_pc,
                                kind,
                                distance: g.distance.max(1),
                                prefetches: g.prefetch_indices.len() as u32,
                            },
                        );
                    }
                }
                PreparedAction::Install(pending)
            }
            Err(_) => PreparedAction::Nothing,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn repair(
        &mut self,
        now: u64,
        head: u64,
        rep_pc: u64,
        orig_pc: u64,
        load_pc: u64,
        trace_id: TraceId,
        trident: &mut Trident,
        dlt: &mut Dlt,
    ) -> PreparedAction {
        let (max_dist, _) = self.max_distance(trident, trace_id);
        let state = self.states.get_mut(&(head, rep_pc)).expect("checked by caller");
        state.max_distance = max_dist;

        if !state.repairable {
            // E.g. a pointer group, or a non-repair mode: mature the load.
            dlt.set_mature(load_pc);
            self.stats.matured += 1;
            self.emit(now, Event::LoadMatured { pc: load_pc });
            return PreparedAction::Nothing;
        }
        if state.repairs_left == 0 {
            dlt.set_mature(load_pc);
            self.stats.matured += 1;
            self.emit(now, Event::LoadMatured { pc: load_pc });
            return PreparedAction::Nothing;
        }
        state.repairs_left -= 1;

        // Average access latency over the load's window (paper: computed
        // from the access counter, miss counter and total miss latency).
        let Some(snap) = dlt.snapshot(load_pc) else {
            return PreparedAction::Nothing;
        };
        let hits = f64::from(snap.accesses - snap.misses);
        let avg_access = (snap.avg_miss_latency * f64::from(snap.misses)
            + hits * self.cfg.l1_latency as f64)
            / f64::from(snap.accesses);

        // Improve → keep increasing; worsen → back off one step. A small
        // tolerance keeps measurement noise (bus contention, window
        // alignment) from ping-ponging the distance.
        let prev = state.prev_avg_latency.iter().find(|(pc, _)| *pc == orig_pc).map(|(_, l)| *l);
        let increase = match prev {
            None => true,
            Some(prev) => avg_access <= prev * 1.02,
        };
        let old = state.distance;
        state.distance = if increase {
            (state.distance.saturating_add(1)).min(state.max_distance)
        } else {
            state.distance.saturating_sub(1).max(1)
        };
        if state.distance > old {
            self.stats.distance_up += 1;
        } else if state.distance < old {
            self.stats.distance_down += 1;
        }
        if state.distance != old {
            state.last_change_at = now;
        }
        match state.prev_avg_latency.iter_mut().find(|(pc, _)| *pc == orig_pc) {
            Some(slot) => slot.1 = avg_access,
            None => state.prev_avg_latency.push((orig_pc, avg_access)),
        }
        let new_distance = state.distance;
        let deref = state.deref_base_off.map(|b| (b, state.stride));
        let repairs_left = u64::from(state.repairs_left);
        let exhausted = state.repairs_left == 0;
        if std::env::var_os("TDO_DEBUG").is_some() {
            eprintln!(
                "repair load={orig_pc:#x} avg={avg_access:.1} prev={prev:?} d {old}->{new_distance} max={} left={}",
                state.max_distance, state.repairs_left
            );
        }
        self.emit(
            now,
            Event::DistanceRepaired {
                trace: trace_id.0,
                group: rep_pc,
                pc: orig_pc,
                old,
                new: new_distance,
                avg_latency_x100: (avg_access * 100.0).round() as u64,
            },
        );
        self.ledger.push(crate::LedgerRecord {
            cycle: now,
            kind: crate::LedgerKind::Repair,
            group: rep_pc,
            pc: orig_pc,
            old: u64::from(old),
            new: u64::from(new_distance),
            evidence_a: (avg_access * 100.0).round() as u64,
            evidence_b: prev.map_or(0, |p| (p * 100.0).round() as u64),
            margin_milli: REPAIR_TOLERANCE_MILLI,
            epoch: repairs_left,
        });

        dlt.clear_window(load_pc);
        if exhausted {
            dlt.set_mature(load_pc);
            self.stats.matured += 1;
            self.emit(now, Event::LoadMatured { pc: load_pc });
        }
        self.stats.repairs += 1;

        if new_distance == old {
            return PreparedAction::Nothing;
        }

        // Patch every prefetch of the group (the paper repairs whole-object
        // distances as a group), plus the dereference load of a jump-pointer
        // group, whose offset advances with the distance.
        let Some(trace) = trident.trace(trace_id) else {
            return PreparedAction::Nothing;
        };
        let mut patches = Vec::new();
        for (i, ti) in trace.insts.iter().enumerate() {
            if !ti.synthetic || ti.orig_pc != rep_pc {
                continue;
            }
            match ti.op {
                TraceOp::Real(inst @ Inst::Prefetch { stride, .. }) if stride != 0 => {
                    let word = encode(&inst).expect("prefetch encodes");
                    let patched =
                        patch_prefetch_distance(word, new_distance).expect("is a prefetch");
                    patches.push((i, patched));
                }
                TraceOp::Real(Inst::Load {
                    ra,
                    rb,
                    off: _,
                    kind: kind @ tdo_isa::LoadKind::NonFaulting,
                }) => {
                    if let Some((base_off, stride)) = deref {
                        let off = base_off + stride * i64::from(new_distance);
                        let word =
                            encode(&Inst::Load { ra, rb, off, kind }).expect("deref offset fits");
                        patches.push((i, word));
                    }
                }
                _ => {}
            }
        }
        if patches.is_empty() {
            return PreparedAction::Nothing;
        }
        PreparedAction::Repair { trace: trace_id, patches }
    }

    /// Commits a prepared action at helper completion: registers trace
    /// changes with Trident and returns the code patches to apply.
    ///
    /// # Errors
    ///
    /// Propagates [`InstallError`] when a replacement trace cannot be
    /// registered (the caller must then drop the patches).
    pub fn commit(
        &mut self,
        now: u64,
        action: PreparedAction,
        trident: &mut Trident,
        dlt: &mut Dlt,
    ) -> Result<Vec<Patch>, InstallError> {
        match action {
            PreparedAction::Nothing => Ok(Vec::new()),
            PreparedAction::Install(pending) => {
                let head = pending.trace.head;
                let new_id = pending.trace.id;
                let forwards = trident.commit_install(now, &pending)?;
                // Re-point group states at the new trace.
                for ((h, _), st) in self.states.iter_mut() {
                    if *h == head {
                        st.trace = new_id;
                    }
                }
                let mut patches = pending.patches;
                patches.extend(forwards);
                Ok(patches)
            }
            PreparedAction::Repair { trace, patches } => {
                let mut out = Vec::with_capacity(patches.len());
                let mut rep = None;
                for (index, word) in patches {
                    let (addr, mut ti) = {
                        let t = trident.trace(trace).ok_or(InstallError::UnknownTrace(trace))?;
                        rep = Some(t.insts[index].orig_pc);
                        (t.cc_pc(index), t.insts[index])
                    };
                    ti.op = TraceOp::Real(tdo_isa::decode(word).expect("patched word decodes"));
                    trident.update_trace_inst(trace, index, ti)?;
                    out.push(Patch { addr, word });
                }
                // Restart the monitoring windows of the repaired group's
                // loads now that the new distance is live: the next window
                // samples post-patch behaviour only, so the improve/worsen
                // decision compares like with like.
                if let (Some(rep_pc), Some(t)) = (rep, trident.trace(trace)) {
                    let head = t.head;
                    for (i, ti) in t.insts.iter().enumerate() {
                        if ti.synthetic {
                            continue;
                        }
                        let m = self
                            .member_to_rep
                            .get(&(head, ti.orig_pc))
                            .copied()
                            .unwrap_or(ti.orig_pc);
                        if m == rep_pc {
                            dlt.clear_window(t.cc_pc(i));
                        }
                    }
                }
                Ok(out)
            }
        }
    }
}
