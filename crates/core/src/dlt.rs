//! The Delinquent Load Table (paper §3.3, Table 2).
//!
//! A 2-way associative, LRU, PC-tagged table that the hardware updates on
//! every committed load executing inside a hot trace. Each entry carries the
//! exact fields of the paper's table: access counter, L1 miss counter, total
//! miss latency, stride, stride confidence bits, last effective address, and
//! the prefetch-mature flag.
//!
//! Within a *load monitoring window* of N accesses the entry accumulates a
//! miss count and total miss latency; at the end of the window a load is
//! *delinquent* when (1) its miss count reaches the threshold and (2) its
//! average miss latency exceeds half the L2-miss latency. A delinquent load
//! raises a delinquent-load event; the helper thread clears the window
//! during optimization.

/// Configuration of the DLT (paper Table 2 defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DltConfig {
    /// Total entries (Table 2: 1024).
    pub entries: usize,
    /// Associativity (Table 2: 2-way).
    pub assoc: usize,
    /// Load monitoring window: accesses per evaluation (Table 2: 256).
    pub window: u32,
    /// Miss-count threshold within a window (Table 2: 8, ≈3% of 256).
    pub miss_threshold: u32,
    /// Average-miss-latency threshold in cycles — "half of the L2 miss
    /// latency" (§3.3). We read *L2 miss latency* as the cost of an access
    /// that misses in the L2 (at least the 35-cycle L3 hit), giving a
    /// threshold of 18: misses served by the L2 itself (11 cycles) never
    /// qualify, while loads whose misses keep paying L3-or-beyond latency —
    /// including partially covered stream-buffer hits — do. (Reading it as
    /// half the *memory* latency would make loads in stream-buffer
    /// equilibrium, which stall for `mem/buffer-depth` ≈ 44 cycles each
    /// iteration, invisible to the DLT, defeating §5.3's observation that
    /// software prefetching targets exactly what the hardware prefetcher
    /// cannot finish.)
    pub latency_threshold: u64,
    /// Stride-confidence ceiling; a load is stride predictable at this value
    /// (paper: 4-bit counter, predictable at 15).
    pub conf_max: u8,
    /// Confidence penalty on a stride change (paper: 7).
    pub conf_dec: u8,
    /// Minimum accesses before a partial-window evaluation is meaningful.
    pub partial_min_accesses: u32,
}

impl DltConfig {
    /// The paper's default configuration.
    #[must_use]
    pub fn paper_baseline() -> DltConfig {
        DltConfig {
            entries: 1024,
            assoc: 2,
            window: 256,
            miss_threshold: 8,
            latency_threshold: 18,
            conf_max: 15,
            conf_dec: 7,
            partial_min_accesses: 32,
        }
    }

    /// The same table with a different size (Figure 8 sweep).
    #[must_use]
    pub fn with_entries(self, entries: usize) -> DltConfig {
        DltConfig { entries, ..self }
    }

    /// The same table with a different monitoring window and miss threshold
    /// (Figure 7 sweep). `miss_rate_percent` is the miss-rate threshold the
    /// paper quotes (miss threshold = window × rate).
    #[must_use]
    pub fn with_window(self, window: u32, miss_rate_percent: f64) -> DltConfig {
        let miss_threshold =
            ((f64::from(window) * miss_rate_percent / 100.0).round() as u32).max(1);
        DltConfig { window, miss_threshold, ..self }
    }
}

/// One DLT entry — fields exactly as the paper's table.
#[derive(Clone, Copy, Debug, Default)]
pub struct DltEntry {
    /// Load tag (the load's PC).
    pub tag: u64,
    /// Entry validity.
    pub valid: bool,
    /// Access counter within the current window.
    pub accesses: u32,
    /// L1 miss counter within the current window.
    pub misses: u32,
    /// Total miss latency within the current window.
    pub total_miss_latency: u64,
    /// Last effective address.
    pub last_addr: u64,
    /// Last observed stride.
    pub stride: i64,
    /// Stride confidence bits.
    pub conf: u8,
    /// Prefetch mature flag: suppress further delinquent events.
    pub mature: bool,
    /// Whether a delinquent event is pending (awaiting the helper).
    pub pending: bool,
    seen: bool,
    stamp: u64,
}

impl DltEntry {
    /// Average miss latency over the current window, if any miss occurred.
    #[must_use]
    pub fn avg_miss_latency(&self) -> Option<f64> {
        (self.misses > 0).then(|| self.total_miss_latency as f64 / f64::from(self.misses))
    }
}

/// A read-only view of one load's statistics for the optimizer.
#[derive(Clone, Copy, Debug)]
pub struct LoadSnapshot {
    /// Accesses in the current (possibly partial) window.
    pub accesses: u32,
    /// Misses in the current window.
    pub misses: u32,
    /// Average miss latency in the current window.
    pub avg_miss_latency: f64,
    /// Last observed stride.
    pub stride: i64,
    /// Whether the stride confidence is saturated.
    pub stride_predictable: bool,
    /// The mature flag.
    pub mature: bool,
}

/// The Delinquent Load Table.
pub struct Dlt {
    cfg: DltConfig,
    sets: Vec<DltEntry>,
    nsets: usize,
    clock: u64,
    /// Delinquent events raised (stat).
    pub events_raised: u64,
    /// Entries evicted by capacity (stat).
    pub evictions: u64,
}

impl Dlt {
    /// Builds a table.
    ///
    /// # Panics
    ///
    /// Panics unless `entries / assoc` is a power of two.
    #[must_use]
    pub fn new(cfg: DltConfig) -> Dlt {
        let nsets = cfg.entries / cfg.assoc;
        assert!(nsets.is_power_of_two(), "DLT sets must be a power of two");
        Dlt {
            sets: vec![DltEntry::default(); cfg.entries],
            nsets,
            clock: 0,
            events_raised: 0,
            evictions: 0,
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DltConfig {
        &self.cfg
    }

    fn set_base(&self, pc: u64) -> usize {
        (((pc >> 3) as usize) & (self.nsets - 1)) * self.cfg.assoc
    }

    fn entry_mut(&mut self, pc: u64) -> &mut DltEntry {
        let base = self.set_base(pc);
        let assoc = self.cfg.assoc;
        let clock = self.clock;
        let ways = &mut self.sets[base..base + assoc];
        // Hit?
        if let Some(i) = ways.iter().position(|e| e.valid && e.tag == pc) {
            ways[i].stamp = clock;
            return &mut ways[i];
        }
        // Allocate: invalid way or LRU. Eviction clears the mature flag
        // implicitly — the paper notes capacity replacement is the only way
        // maturity is reset.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.stamp } else { 0 })
            .map(|(i, _)| i)
            .expect("assoc > 0");
        if ways[victim].valid {
            self.evictions += 1;
        }
        ways[victim] = DltEntry { tag: pc, valid: true, stamp: clock, ..DltEntry::default() };
        &mut ways[victim]
    }

    /// Hardware update on a committed hot-trace load. Returns `true` when
    /// this load should raise a delinquent-load event.
    pub fn observe(&mut self, pc: u64, addr: u64, l1_miss: bool, latency: u64) -> bool {
        self.clock += 1;
        let cfg = self.cfg;
        let e = self.entry_mut(pc);

        // Stride tracking on every commit (paper: values updated every time
        // the load is committed, not just on misses).
        if e.seen {
            let new_stride = addr.wrapping_sub(e.last_addr) as i64;
            if new_stride == e.stride {
                e.conf = e.conf.saturating_add(1).min(cfg.conf_max);
            } else {
                e.conf = e.conf.saturating_sub(cfg.conf_dec);
                e.stride = new_stride;
            }
        }
        e.seen = true;
        e.last_addr = addr;

        e.accesses += 1;
        if l1_miss {
            e.misses += 1;
            e.total_miss_latency += latency;
        }

        if !e.accesses.is_multiple_of(cfg.window) {
            return false;
        }
        // Window boundary: evaluate delinquency.
        let delinquent = e.misses >= cfg.miss_threshold
            && e.avg_miss_latency().is_some_and(|l| l > cfg.latency_threshold as f64);
        if delinquent && !e.mature {
            // Counters stay; the helper clears them during optimization. A
            // re-evaluation fires every further full window until then.
            e.pending = true;
            self.events_raised += 1;
            return true;
        }
        if !e.pending {
            // Not delinquent: reset and re-examine over the next window.
            e.accesses = 0;
            e.misses = 0;
            e.total_miss_latency = 0;
        }
        false
    }

    /// A snapshot of `pc`'s current-window statistics, if tracked and it has
    /// enough accesses for a (possibly partial-window) evaluation.
    #[must_use]
    pub fn snapshot(&self, pc: u64) -> Option<LoadSnapshot> {
        let base = self.set_base(pc);
        let e = self.sets[base..base + self.cfg.assoc].iter().find(|e| e.valid && e.tag == pc)?;
        (e.accesses >= self.cfg.partial_min_accesses).then(|| LoadSnapshot {
            accesses: e.accesses,
            misses: e.misses,
            avg_miss_latency: e.avg_miss_latency().unwrap_or(0.0),
            stride: e.stride,
            stride_predictable: e.conf >= self.cfg.conf_max && e.stride != 0,
            mature: e.mature,
        })
    }

    /// Whether `pc` qualifies as delinquent under a (possibly partial)
    /// window, per the paper's §3.4.1 partial-window rule.
    #[must_use]
    pub fn is_delinquent(&self, pc: u64) -> bool {
        let Some(s) = self.snapshot(pc) else {
            return false;
        };
        if s.mature {
            return false;
        }
        let scaled_threshold =
            f64::from(self.cfg.miss_threshold) * f64::from(s.accesses) / f64::from(self.cfg.window);
        f64::from(s.misses) >= scaled_threshold.max(1.0)
            && s.avg_miss_latency > self.cfg.latency_threshold as f64
    }

    /// Helper-thread window clear after an optimization touched `pc`.
    pub fn clear_window(&mut self, pc: u64) {
        let base = self.set_base(pc);
        if let Some(e) =
            self.sets[base..base + self.cfg.assoc].iter_mut().find(|e| e.valid && e.tag == pc)
        {
            e.accesses = 0;
            e.misses = 0;
            e.total_miss_latency = 0;
            e.pending = false;
        }
    }

    /// Sets the mature flag for `pc` (unrepairable or repair budget spent).
    pub fn set_mature(&mut self, pc: u64) {
        let base = self.set_base(pc);
        if let Some(e) =
            self.sets[base..base + self.cfg.assoc].iter_mut().find(|e| e.valid && e.tag == pc)
        {
            e.mature = true;
            e.pending = false;
        }
    }

    /// Clears every mature flag — the paper's §3.5.2 future-work extension:
    /// "clearing the mature flag when there is a working set or phase change
    /// in the program's execution to capture potentially new behavior".
    /// Returns how many flags were cleared.
    pub fn clear_all_mature(&mut self) -> usize {
        let mut n = 0;
        for e in &mut self.sets {
            if e.valid && e.mature {
                e.mature = false;
                n += 1;
            }
        }
        n
    }

    /// Whether `pc` is currently marked mature.
    #[must_use]
    pub fn is_mature(&self, pc: u64) -> bool {
        let base = self.set_base(pc);
        self.sets[base..base + self.cfg.assoc].iter().any(|e| e.valid && e.tag == pc && e.mature)
    }

    /// Total hardware state in bits — used for the paper's §5.4 experiment
    /// that reinvests the DLT area into L1 capacity.
    #[must_use]
    pub fn state_bits(&self) -> u64 {
        // tag(48) + access(9) + miss(9) + latency(20) + last addr(48)
        // + stride(16) + conf(4) + mature(1) + valid(1) = 156 bits/entry.
        self.cfg.entries as u64 * 156
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dlt() -> Dlt {
        Dlt::new(DltConfig {
            entries: 8,
            assoc: 2,
            window: 16,
            miss_threshold: 4,
            latency_threshold: 100,
            conf_max: 15,
            conf_dec: 7,
            partial_min_accesses: 4,
        })
    }

    /// Feeds `n` accesses with every other access missing at `lat` cycles.
    fn feed(d: &mut Dlt, pc: u64, n: u32, miss_every: u32, lat: u64) -> u32 {
        let mut events = 0;
        for i in 0..n {
            let miss = miss_every != 0 && i % miss_every == 0;
            if d.observe(pc, 0x1000 + u64::from(i) * 8, miss, if miss { lat } else { 3 }) {
                events += 1;
            }
        }
        events
    }

    #[test]
    fn hot_missing_load_raises_event_at_window_end() {
        let mut d = dlt();
        // 16 accesses, miss every 2nd (8 misses >= 4), latency 300 > 100.
        let events = feed(&mut d, 0x100, 16, 2, 300);
        assert_eq!(events, 1);
        assert_eq!(d.events_raised, 1);
    }

    #[test]
    fn low_miss_rate_is_not_delinquent() {
        let mut d = dlt();
        let events = feed(&mut d, 0x100, 64, 8, 300); // 2 misses per window < 4
        assert_eq!(events, 0);
    }

    #[test]
    fn short_latency_misses_are_not_delinquent() {
        let mut d = dlt();
        let events = feed(&mut d, 0x100, 16, 2, 50); // avg 50 < 100
        assert_eq!(events, 0);
    }

    #[test]
    fn pending_event_reevaluates_each_window_until_cleared() {
        let mut d = dlt();
        let events = feed(&mut d, 0x100, 48, 2, 300);
        assert_eq!(events, 3, "one event per full window while uncleared");
        d.clear_window(0x100);
        let events = feed(&mut d, 0x100, 8, 2, 300);
        assert_eq!(events, 0, "partial window after clear");
    }

    #[test]
    fn mature_loads_never_raise_events() {
        let mut d = dlt();
        feed(&mut d, 0x100, 16, 2, 300);
        d.set_mature(0x100);
        d.clear_window(0x100);
        let events = feed(&mut d, 0x100, 32, 2, 300);
        assert_eq!(events, 0);
        assert!(d.is_mature(0x100));
    }

    #[test]
    fn eviction_resets_maturity() {
        let mut d = dlt();
        // 4 sets x 2 ways. PCs mapping to the same set: step by 8*nsets = 32.
        d.observe(0x100, 0, false, 3);
        d.set_mature(0x100);
        d.observe(0x120, 0, false, 3);
        d.observe(0x140, 0, false, 3); // evicts LRU (0x100)
        assert_eq!(d.evictions, 1);
        assert!(!d.is_mature(0x100), "evicted entry forgets maturity");
    }

    #[test]
    fn stride_confidence_saturates_and_penalizes() {
        let mut d = dlt();
        for i in 0..20u64 {
            d.observe(0x200, 0x4000 + i * 64, false, 3);
        }
        let s = d.snapshot(0x200).unwrap();
        assert!(s.stride_predictable);
        assert_eq!(s.stride, 64);
        // One irregular access drops confidence by 7: no longer predictable.
        d.observe(0x200, 0x9999, false, 3);
        let s = d.snapshot(0x200).unwrap();
        assert!(!s.stride_predictable);
    }

    #[test]
    fn partial_window_delinquency_uses_scaled_threshold() {
        let mut d = dlt();
        // 8 accesses (half window), 4 misses at 300: full-window threshold is
        // 4, scaled to 2 for a half window — delinquent.
        feed(&mut d, 0x300, 8, 2, 300);
        assert!(d.is_delinquent(0x300));
        // A load with only 1 long miss in 8 accesses is not.
        feed(&mut d, 0x340, 8, 8, 300);
        assert!(!d.is_delinquent(0x340));
    }

    #[test]
    fn snapshot_requires_minimum_accesses() {
        let mut d = dlt();
        feed(&mut d, 0x400, 2, 1, 300);
        assert!(d.snapshot(0x400).is_none());
        feed(&mut d, 0x400, 4, 1, 300);
        assert!(d.snapshot(0x400).is_some());
    }

    #[test]
    fn paper_config_matches_table_2() {
        let c = DltConfig::paper_baseline();
        assert_eq!(c.entries, 1024);
        assert_eq!(c.assoc, 2);
        assert_eq!(c.window, 256);
        assert_eq!(c.miss_threshold, 8);
        // Figure 7 sweep helper: 3% of 256 ≈ 8.
        let swept = c.with_window(256, 3.0);
        assert_eq!(swept.miss_threshold, 8);
        let one_pct = c.with_window(128, 1.0);
        assert_eq!(one_pct.miss_threshold, 1);
    }
}
