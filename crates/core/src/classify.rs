//! Delinquent-load classification (paper §3.4.1).
//!
//! The optimizer partitions the delinquent loads of a hot trace into
//! *Stride*, *Pointer*, and *Same Object* classes:
//!
//! * **Stride** — the recurrence between instances of the load's base
//!   register is a single simple arithmetic instruction with a constant
//!   (`lda`/`add`/`sub` immediate), *or* the DLT found the load stride
//!   predictable in hardware (which catches pointer chains over
//!   sequentially allocated objects);
//! * **Pointer** — the load's destination is used, before modification, as
//!   the base register of another load;
//! * **Same Object** — loads sharing the same live base-register value form
//!   a group that one prefetch per cache line can cover.

use std::collections::HashMap;

use tdo_isa::{AluOp, Inst, LoadKind, Reg};
use tdo_trident::{Trace, TraceOp};

use crate::dlt::Dlt;

/// How a load's address recurs across trace iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadClass {
    /// Stride-recurrent with the given byte stride per iteration.
    Stride {
        /// Byte stride per iteration.
        stride: i64,
    },
    /// Pointer load (destination feeds another load's base).
    Pointer,
    /// Neither: not prefetchable by this optimizer.
    Other,
}

/// One classified load in the trace.
#[derive(Clone, Copy, Debug)]
pub struct LoadInfo {
    /// Index of the load in the trace body.
    pub index: usize,
    /// Base register.
    pub base: Reg,
    /// SSA-like version of the base value this load observes.
    pub base_version: u32,
    /// Byte offset from the base register.
    pub off: i64,
    /// Destination register.
    pub dest: Reg,
    /// Load flavour.
    pub kind: LoadKind,
    /// Classification.
    pub class: LoadClass,
    /// Whether the destination feeds another load's base before being
    /// redefined — true for [`LoadClass::Pointer`] loads but also for
    /// stride-classified pointer loads (e.g. a strided walk over an array
    /// of pointers), which enables jump-pointer prefetching (§3.4.3).
    pub is_pointer: bool,
    /// Whether the DLT currently reports this load delinquent.
    pub delinquent: bool,
}

/// A *Same Object* group: loads seeing the same base value.
#[derive(Clone, Debug)]
pub struct ObjectGroup {
    /// Shared base register.
    pub base: Reg,
    /// Shared base-value version.
    pub base_version: u32,
    /// Indices into the classification's load list, sorted by offset.
    pub members: Vec<usize>,
    /// The group's stride, when at least one delinquent member is a stride
    /// load (making the whole group stride-address predictable, §3.4.2).
    pub stride: Option<i64>,
    /// Whether the shared base register is itself loaded by a pointer load
    /// in the trace (enables pointer-dereference prefetching for the group).
    pub pointer_base: bool,
}

impl ObjectGroup {
    /// Whether any member is delinquent.
    #[must_use]
    pub fn has_delinquent(&self, loads: &[LoadInfo]) -> bool {
        self.members.iter().any(|&m| loads[m].delinquent)
    }
}

/// Result of analyzing one trace.
#[derive(Clone, Debug, Default)]
pub struct Classification {
    /// All loads in the trace, in trace order.
    pub loads: Vec<LoadInfo>,
    /// Same-object groups over those loads.
    pub groups: Vec<ObjectGroup>,
}

/// Finds the single-instruction constant recurrence of `reg` in the trace
/// body, if any: exactly one instruction writes `reg`, and it is
/// `lda reg, c(reg)` or `addi/subi reg, c, reg`.
fn code_stride_of(trace: &Trace, reg: Reg) -> Option<i64> {
    let mut stride = None;
    let mut writes = 0;
    for ti in &trace.insts {
        let TraceOp::Real(inst) = ti.op else { continue };
        if inst.def() != Some(reg) {
            continue;
        }
        writes += 1;
        if writes > 1 {
            return None;
        }
        stride = match inst {
            Inst::Lda { ra, rb, imm } if ra == reg && rb == reg => Some(imm),
            Inst::OpImm { op: AluOp::Add, ra, imm, rc } if ra == reg && rc == reg => Some(imm),
            Inst::OpImm { op: AluOp::Sub, ra, imm, rc } if ra == reg && rc == reg => Some(-imm),
            _ => None,
        };
    }
    // Only loop traces see the recurrence again next iteration.
    if trace.is_loop {
        stride.filter(|s| *s != 0)
    } else {
        None
    }
}

/// Whether `dest` of the load at `index` feeds the base of another load
/// before being redefined (scanning forward, wrapping on loop traces).
fn is_pointer_load(trace: &Trace, index: usize, dest: Reg) -> bool {
    let n = trace.insts.len();
    let limit = if trace.is_loop { n } else { n - index - 1 };
    for step in 1..=limit {
        let i = (index + step) % n;
        let TraceOp::Real(inst) = trace.insts[i].op else { continue };
        if let Inst::Load { rb, .. } = inst {
            if rb == dest {
                return true;
            }
        }
        if inst.def() == Some(dest) {
            return false;
        }
    }
    false
}

/// Analyzes the trace against the DLT's current statistics.
///
/// `cc_pc_of` maps a trace index to the load's monitored PC (its code-cache
/// address, or its original PC for a not-yet-prefetched trace being
/// re-optimized — the DLT is tagged with the address the load *executes* at).
#[must_use]
pub fn classify(trace: &Trace, dlt: &Dlt, cc_pc_of: impl Fn(usize) -> u64) -> Classification {
    // Pass 1: base-value versioning.
    let mut version: HashMap<Reg, u32> = HashMap::new();
    let mut loads: Vec<LoadInfo> = Vec::new();
    for (i, ti) in trace.insts.iter().enumerate() {
        let TraceOp::Real(inst) = ti.op else { continue };
        // Optimizer-inserted loads (pointer dereferences) are not
        // classification subjects — they already are prefetch machinery.
        if let (Inst::Load { ra, rb, off, kind }, false) = (inst, ti.synthetic) {
            loads.push(LoadInfo {
                index: i,
                base: rb,
                base_version: version.get(&rb).copied().unwrap_or(0),
                off,
                dest: ra,
                kind,
                class: LoadClass::Other,
                is_pointer: false,
                delinquent: false,
            });
        }
        if let Some(d) = inst.def() {
            *version.entry(d).or_insert(0) += 1;
        }
    }

    // Pass 2: per-load classification.
    for li in &mut loads {
        let pc = cc_pc_of(li.index);
        li.delinquent = dlt.is_delinquent(pc);
        let code_stride = code_stride_of(trace, li.base);
        let hw_stride = dlt.snapshot(pc).filter(|s| s.stride_predictable).map(|s| s.stride);
        li.is_pointer = is_pointer_load(trace, li.index, li.dest);
        li.class = if let Some(s) = code_stride.or(hw_stride) {
            LoadClass::Stride { stride: s }
        } else if li.is_pointer {
            LoadClass::Pointer
        } else {
            LoadClass::Other
        };
    }

    // Pass 3: same-object grouping by (base, version).
    let mut group_of: HashMap<(Reg, u32), usize> = HashMap::new();
    let mut groups: Vec<ObjectGroup> = Vec::new();
    for (li_idx, li) in loads.iter().enumerate() {
        let key = (li.base, li.base_version);
        let g = *group_of.entry(key).or_insert_with(|| {
            groups.push(ObjectGroup {
                base: li.base,
                base_version: li.base_version,
                members: Vec::new(),
                stride: None,
                pointer_base: false,
            });
            groups.len() - 1
        });
        groups[g].members.push(li_idx);
    }
    for g in &mut groups {
        g.members.sort_by_key(|&m| loads[m].off);
        // Group stride: from any delinquent stride member (paper: "as long
        // as a same object group has at least one delinquent load that is
        // Stride predictable, the whole group is stride address
        // predictable"); fall back to any stride member.
        let stride_of = |m: &usize| match loads[*m].class {
            LoadClass::Stride { stride } => Some(stride),
            _ => None,
        };
        g.stride = g
            .members
            .iter()
            .filter(|&&m| loads[m].delinquent)
            .find_map(stride_of)
            .or_else(|| g.members.iter().find_map(stride_of));
        // Pointer base: the group's base register is produced by a load.
        g.pointer_base = loads.iter().any(|other| {
            other.dest == g.base
                && matches!(other.class, LoadClass::Pointer | LoadClass::Stride { .. })
        }) || trace
            .insts
            .iter()
            .any(|ti| matches!(ti.op, TraceOp::Real(Inst::Load { ra, .. }) if ra == g.base));
    }

    Classification { loads, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlt::DltConfig;
    use tdo_isa::Cond;
    use tdo_trident::{TraceId, TraceInst};

    fn ti(op: TraceOp) -> TraceInst {
        TraceInst { op, orig_pc: 0, weight: 1, synthetic: false }
    }

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    fn mk_trace(ops: Vec<TraceOp>, is_loop: bool) -> Trace {
        Trace {
            id: TraceId(0),
            head: 0x1000,
            insts: ops.into_iter().map(ti).collect(),
            is_loop,
            cc_addr: 0x10_0000,
        }
    }

    fn empty_dlt() -> Dlt {
        Dlt::new(DltConfig { entries: 64, assoc: 2, ..DltConfig::paper_baseline() })
    }

    /// Makes `pc` delinquent and stride-predictable (or not) in the DLT.
    fn prime(dlt: &mut Dlt, pc: u64, stride: u64) {
        for i in 0..64u64 {
            dlt.observe(pc, 0x9_0000 + i * stride, i % 2 == 0, 300);
        }
    }

    #[test]
    fn code_stride_via_lda_recurrence() {
        // loop: ldq r2, 0(r1); ldq r3, 8(r1); lda r1, 16(r1); exit; loopback
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(2), rb: r(1), off: 0, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Load { ra: r(3), rb: r(1), off: 8, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Lda { ra: r(1), rb: r(1), imm: 16 }),
                TraceOp::CondExit { cond: Cond::Eq, ra: r(4), to: 0x2000 },
                TraceOp::LoopBack,
            ],
            true,
        );
        let mut dlt = empty_dlt();
        prime(&mut dlt, t.cc_pc(0), 16);
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert_eq!(c.loads.len(), 2);
        assert_eq!(c.loads[0].class, LoadClass::Stride { stride: 16 });
        assert!(c.loads[0].delinquent);
        // Both loads share base version 0 of r1 → one group, sorted by off.
        assert_eq!(c.groups.len(), 1);
        assert_eq!(c.groups[0].members, vec![0, 1]);
        assert_eq!(c.groups[0].stride, Some(16));
    }

    #[test]
    fn base_update_splits_same_object_groups() {
        // ldq r2, 0(r1); lda r1, 8(r1); ldq r3, 0(r1) — different versions.
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(2), rb: r(1), off: 0, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Lda { ra: r(1), rb: r(1), imm: 8 }),
                TraceOp::Real(Inst::Load { ra: r(3), rb: r(1), off: 0, kind: LoadKind::Int }),
                TraceOp::LoopBack,
            ],
            true,
        );
        let dlt = empty_dlt();
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert_eq!(c.groups.len(), 2);
    }

    #[test]
    fn pointer_chase_is_pointer_class() {
        // loop: ldq r1, 8(r1) — dest feeds its own base next iteration.
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(1), rb: r(1), off: 8, kind: LoadKind::Int }),
                TraceOp::CondExit { cond: Cond::Eq, ra: r(1), to: 0x2000 },
                TraceOp::LoopBack,
            ],
            true,
        );
        let dlt = empty_dlt();
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert_eq!(c.loads[0].class, LoadClass::Pointer);
    }

    #[test]
    fn hardware_stride_promotes_pointer_chains() {
        // Same pointer chase, but the DLT saw a constant stride (sequential
        // allocation): classified Stride.
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(1), rb: r(1), off: 8, kind: LoadKind::Int }),
                TraceOp::CondExit { cond: Cond::Eq, ra: r(1), to: 0x2000 },
                TraceOp::LoopBack,
            ],
            true,
        );
        let mut dlt = empty_dlt();
        prime(&mut dlt, t.cc_pc(0), 48);
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert_eq!(c.loads[0].class, LoadClass::Stride { stride: 48 });
    }

    #[test]
    fn dest_redefinition_blocks_pointer_class() {
        // ldq r2, 0(r1); lda r2, 1(r31) — r2 overwritten before any use as base.
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(2), rb: r(1), off: 0, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Lda { ra: r(2), rb: Reg::ZERO, imm: 1 }),
                TraceOp::Real(Inst::Load { ra: r(3), rb: r(2), off: 0, kind: LoadKind::Int }),
                TraceOp::LoopBack,
            ],
            true,
        );
        let dlt = empty_dlt();
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        // Load 0 dest r2 is redefined before use as a base... but the lda
        // makes r2 a new value whose load is unrelated. Load 0 is Other.
        assert_eq!(c.loads[0].class, LoadClass::Other);
    }

    #[test]
    fn two_base_writes_disqualify_code_stride() {
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(2), rb: r(1), off: 0, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Lda { ra: r(1), rb: r(1), imm: 8 }),
                TraceOp::Real(Inst::Lda { ra: r(1), rb: r(1), imm: 8 }),
                TraceOp::LoopBack,
            ],
            true,
        );
        let dlt = empty_dlt();
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert_eq!(c.loads[0].class, LoadClass::Other);
    }

    #[test]
    fn non_loop_traces_have_no_code_stride() {
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(2), rb: r(1), off: 0, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Lda { ra: r(1), rb: r(1), imm: 8 }),
                TraceOp::JumpBack { to: 0x2000 },
            ],
            false,
        );
        let dlt = empty_dlt();
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert_eq!(c.loads[0].class, LoadClass::Other);
    }

    #[test]
    fn group_members_are_sorted_by_offset() {
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(2), rb: r(1), off: 24, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Load { ra: r(3), rb: r(1), off: 0, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Load { ra: r(4), rb: r(1), off: 8, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Lda { ra: r(1), rb: r(1), imm: 32 }),
                TraceOp::LoopBack,
            ],
            true,
        );
        let dlt = empty_dlt();
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        assert_eq!(c.groups.len(), 1);
        let offs: Vec<i64> = c.groups[0].members.iter().map(|&m| c.loads[m].off).collect();
        assert_eq!(offs, vec![0, 8, 24]);
    }

    #[test]
    fn pointer_base_groups_are_detected() {
        // `pointer_base` detects a base register fed by a load.
        let t = mk_trace(
            vec![
                TraceOp::Real(Inst::Load { ra: r(5), rb: r(1), off: 0, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Load { ra: r(6), rb: r(5), off: 8, kind: LoadKind::Int }),
                TraceOp::Real(Inst::Load { ra: r(7), rb: r(5), off: 16, kind: LoadKind::Int }),
                TraceOp::LoopBack,
            ],
            true,
        );
        let dlt = empty_dlt();
        let c = classify(&t, &dlt, |i| t.cc_pc(i));
        let g5 = c.groups.iter().find(|g| g.base == r(5)).unwrap();
        assert!(g5.pointer_base);
        assert_eq!(g5.members.len(), 2);
    }
}
