//! Quick calibration matrix: IPC of every workload under every arm at test
//! scale (development aid; the publication-grade sweeps live in tdo-bench).

use tdo_sim::{run, PrefetchSetup, SimConfig};
use tdo_workloads::{build, Scale};

fn main() {
    let arms = [
        ("none", PrefetchSetup::NoPrefetch),
        ("hw4x4", PrefetchSetup::Hw4x4),
        ("hw8x8", PrefetchSetup::Hw8x8),
        ("basic", PrefetchSetup::SwBasic),
        ("whole", PrefetchSetup::SwWholeObject),
        ("selfrep", PrefetchSetup::SwSelfRepair),
    ];
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}   {:>7} {:>7} {:>7}",
        "workload", "none", "hw4x4", "hw8x8", "basic", "whole", "selfrep", "b/hw", "w/hw", "sr/hw"
    );
    for name in tdo_workloads::names() {
        let w = build(name, Scale::Test).unwrap();
        let mut ipc = Vec::new();
        for (_, setup) in arms {
            let r = run(&w, &SimConfig::test(setup));
            ipc.push(r.ipc());
        }
        println!(
            "{:<10} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}   {:>6.1}% {:>6.1}% {:>6.1}%",
            name,
            ipc[0],
            ipc[1],
            ipc[2],
            ipc[3],
            ipc[4],
            ipc[5],
            (ipc[3] / ipc[2] - 1.0) * 100.0,
            (ipc[4] / ipc[2] - 1.0) * 100.0,
            (ipc[5] / ipc[2] - 1.0) * 100.0,
        );
    }
}
