//! Quickstart: run one benchmark under the hardware-prefetching baseline and
//! under the self-repairing software prefetcher, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart [workload]
//! ```

use tdo_sim::{run, PrefetchSetup, SimConfig};
use tdo_workloads::{build, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_string());
    let workload = build(&name, Scale::Full).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`; one of: {:?}", tdo_workloads::names());
        std::process::exit(1);
    });
    println!("workload: {name} — {}", workload.description);

    // The paper's baseline: an SMT core with 8x8 hardware stream buffers.
    let baseline = run(&workload, &SimConfig::paper(PrefetchSetup::Hw8x8));
    // The contribution: Trident forms hot traces, the DLT spots delinquent
    // loads, prefetches are spliced in at distance 1 and repaired in place.
    let repaired = run(&workload, &SimConfig::paper(PrefetchSetup::SwSelfRepair));

    println!();
    println!("baseline (hw 8x8):        IPC {:.4}", baseline.ipc());
    println!("self-repairing prefetch:  IPC {:.4}", repaired.ipc());
    println!("speedup:                  {:+.1}%", (repaired.speedup_over(&baseline) - 1.0) * 100.0);
    println!();
    println!("traces installed:         {}", repaired.trident.traces_installed);
    println!("delinquent-load events:   {}", repaired.optimizer.events);
    println!("prefetch insertions:      {}", repaired.optimizer.insertions);
    println!(
        "in-place repairs:         {} ({} up, {} down)",
        repaired.optimizer.repairs,
        repaired.optimizer.distance_up,
        repaired.optimizer.distance_down
    );
    println!("loads matured:            {}", repaired.optimizer.matured);
    println!(
        "helper thread active:     {:.1}% of cycles",
        repaired.helper_active_fraction() * 100.0
    );
    println!(
        "miss coverage:            {:.0}% in hot traces, {:.0}% prefetched",
        repaired.miss_coverage_by_traces() * 100.0,
        repaired.miss_coverage_by_prefetcher() * 100.0
    );
    let b = repaired.load_breakdown();
    println!(
        "load breakdown:           {:.0}% hit / {:.0}% hit-prefetched / {:.0}% partial / {:.0}% miss / {:.1}% miss-by-prefetch",
        b[0] * 100.0, b[1] * 100.0, b[2] * 100.0, b[3] * 100.0, b[4] * 100.0
    );
}
