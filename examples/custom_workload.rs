//! Bring your own program: assemble a custom kernel with `tdo_isa::Asm`,
//! wrap it in a `Workload`, and run it under the full dynamic-optimization
//! stack. This is the path a user takes to study their own access pattern.
//!
//! The kernel here is a blocked 2-D sweep: for each row, walk its columns;
//! rows are far apart, so every row start misses — a pattern between the
//! pure-stride and pointer workloads of the built-in suite.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use tdo_isa::{AluOp, Asm, Cond, Reg};
use tdo_sim::{run, PrefetchSetup, SimConfig};
use tdo_workloads::{DataAlloc, Workload, CODE_BASE};

fn build_blocked_sweep() -> Workload {
    let mut data = DataAlloc::new();
    let rows = 4096u64;
    let row_bytes = 4096u64; // 64 lines per row, but only 8 touched
    let base = data.reserve(rows * row_bytes);

    // Registers (r20-r27 are reserved for the optimizer's scratch).
    let (row_ptr, col_ptr, row_n, col_n, acc) =
        (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));

    let mut a = Asm::new(CODE_BASE);
    a.li(Reg::int(6), 3); // outer repetitions
    a.label("outer");
    a.li(row_ptr, base as i64);
    a.li(row_n, rows as i64);
    a.label("row");
    a.mov(row_ptr, col_ptr);
    a.li(col_n, 8);
    a.label("col");
    a.ldq(Reg::int(7), col_ptr, 0); // one load per line within the row
    a.op(AluOp::Add, acc, Reg::int(7), acc);
    a.lda(col_ptr, col_ptr, 64);
    a.op_imm(AluOp::Sub, col_n, 1, col_n);
    a.bcond_to(Cond::Ne, col_n, "col");
    a.lda(row_ptr, row_ptr, row_bytes as i64);
    a.op_imm(AluOp::Sub, row_n, 1, row_n);
    a.bcond_to(Cond::Ne, row_n, "row");
    a.op_imm(AluOp::Sub, Reg::int(6), 1, Reg::int(6));
    a.bcond_to(Cond::Ne, Reg::int(6), "outer");
    a.halt();

    let code = a.assemble().expect("kernel assembles");
    Workload {
        program: tdo_isa::Program {
            name: "blocked-sweep".into(),
            entry: CODE_BASE,
            code_base: CODE_BASE,
            code,
            data: data.segments,
        },
        description: format!(
            "blocked 2-D sweep: {rows} rows, 8 lines touched per {row_bytes}B row"
        ),
    }
}

fn main() {
    let workload = build_blocked_sweep();
    println!("custom workload: {}", workload.description);

    for (label, setup) in [
        ("no prefetch      ", PrefetchSetup::NoPrefetch),
        ("hw 8x8           ", PrefetchSetup::Hw8x8),
        ("sw self-repairing", PrefetchSetup::SwSelfRepair),
    ] {
        let mut cfg = SimConfig::paper(setup);
        cfg.measure_insts = 1_000_000;
        let r = run(&workload, &cfg);
        println!(
            "{label}  IPC {:.4}   traces {}  insertions {}  repairs {}",
            r.ipc(),
            r.trident.traces_installed,
            r.optimizer.insertions,
            r.optimizer.repairs
        );
    }
}
