//! Diagnostic dump of one run (development aid).

use tdo_sim::{run, PrefetchSetup, SimConfig};
use tdo_workloads::{build, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "art".into());
    let setup = match std::env::args().nth(2).as_deref() {
        Some("base") => PrefetchSetup::Hw8x8,
        Some("none") => PrefetchSetup::NoPrefetch,
        Some("basic") => PrefetchSetup::SwBasic,
        Some("whole") => PrefetchSetup::SwWholeObject,
        _ => PrefetchSetup::SwSelfRepair,
    };
    let w = build(&name, Scale::Test).unwrap();
    let r = run(&w, &SimConfig::test(setup));
    println!("== {name} under {setup:?}");
    println!("cycles {}  orig_insts {}  ipc {:.4}", r.cycles, r.orig_insts, r.ipc());
    println!("halted {}  helper_active {:.2}%", r.halted, r.helper_active_fraction() * 100.0);
    println!("window: {:#?}", r.window);
    println!("cpu: {:#?}", r.cpu);
    println!("mem: {:#?}", r.mem);
    println!("trident: {:#?}", r.trident);
    println!("optimizer: {:#?}", r.optimizer);
    println!("breakdown: {:?}", r.load_breakdown());
    println!(
        "miss coverage: traces {:.1}%  prefetcher {:.1}%",
        r.miss_coverage_by_traces() * 100.0,
        r.miss_coverage_by_prefetcher() * 100.0
    );
}
