//! The self-repair mechanism up close: drive the optimizer by hand on a
//! linked-list trace and watch the prefetch distance walk toward its optimum,
//! one in-place instruction patch at a time.
//!
//! This bypasses the full-system simulator and talks to the Trident and
//! prefetcher APIs directly — useful for understanding the machinery.
//!
//! ```sh
//! cargo run --release --example adaptive_repair
//! ```

use std::collections::HashMap;

use tdo_core::{
    Dlt, DltConfig, OptimizerConfig, PrefetchOptimizer, PreparedAction, SwPrefetchMode,
};
use tdo_isa::{decode, prefetch_distance, AluOp, Asm, Cond, Inst, Reg};
use tdo_trident::{CodeSource, HotEvent, TraceOp, Trident, TridentConfig};

struct MapCode(HashMap<u64, Inst>);

impl CodeSource for MapCode {
    fn fetch_inst(&self, pc: u64) -> Option<Inst> {
        self.0.get(&pc).copied()
    }
}

fn main() {
    // A linked-list traversal: three hot fields plus the pointer chase.
    let (p, v1, v2, n) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.ldq(v1, p, 8);
    a.ldq(v2, p, 16);
    a.op(AluOp::Add, Reg::int(6), v1, Reg::int(6));
    a.ldq(p, p, 0); // p = p->next
    a.op_imm(AluOp::Sub, n, 1, n);
    a.bcond_to(Cond::Ne, n, "loop");
    a.halt();
    let code = MapCode(
        a.assemble()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, w)| (0x1000 + i as u64 * 8, decode(*w).unwrap()))
            .collect(),
    );

    // Trident forms and installs the hot trace.
    let mut trident = Trident::new(TridentConfig {
        code_cache_base: 0x10_0000,
        ..TridentConfig::paper_baseline()
    });
    let pending = trident.prepare_install(0, &code, 0x1000, 0b1, 1).unwrap();
    trident.commit_install(0, &pending).unwrap();
    let mut trace = pending.trace.id;
    println!(
        "installed hot trace {trace:?} at {:#x} ({} instructions)",
        pending.trace.cc_addr,
        pending.trace.insts.len()
    );

    // Pretend the nodes are allocated sequentially (stride 64): the DLT's
    // hardware stride detector discovers what no static analysis could.
    let mut dlt = Dlt::new(DltConfig { window: 64, ..DltConfig::paper_baseline() });
    let mut optimizer =
        PrefetchOptimizer::new(OptimizerConfig::paper_baseline(SwPrefetchMode::SelfRepair));
    // Trace observed fast iterations => generous maximum distance.
    trident.watch.on_enter(trace, 0);
    trident.watch.on_enter(trace, 12);

    // Feed monitoring windows; each round the load's average latency
    // improves as if the growing distance were hiding more of the miss.
    let mut latency = 300u64;
    for round in 0..14 {
        let fired = {
            let t = trident.trace(trace).unwrap();
            let loads: Vec<u64> = t
                .insts
                .iter()
                .enumerate()
                .filter(|(_, ti)| {
                    matches!(ti.op, TraceOp::Real(Inst::Load { .. })) && !ti.synthetic
                })
                .map(|(i, _)| t.cc_pc(i))
                .collect();
            let mut fired = None;
            for k in 0..64u64 {
                for pc in &loads {
                    if dlt.observe(*pc, 0x80_0000 + k * 64, k % 2 == 0, latency) {
                        fired.get_or_insert(*pc);
                    }
                }
            }
            fired
        };
        let Some(load_pc) = fired else {
            println!("round {round:>2}: no delinquent-load event — converged");
            break;
        };
        // A stand-in for the simulated clock: each monitoring round is one
        // window's worth of cycles.
        let now = (round + 1) as u64 * 10_000;
        let action = optimizer.handle_event(
            now,
            HotEvent::DelinquentLoad { load_pc, trace },
            &mut trident,
            &mut dlt,
            &code,
        );
        match &action {
            PreparedAction::Install(p) => {
                println!(
                    "round {round:>2}: INSERT — {} prefetch(es) spliced in, distance 1",
                    p.trace
                        .insts
                        .iter()
                        .filter(|ti| matches!(ti.op, TraceOp::Real(Inst::Prefetch { .. })))
                        .count()
                );
                trace = p.trace.id;
            }
            PreparedAction::Repair { patches, .. } => {
                let d = prefetch_distance(patches[0].1).unwrap_or(0);
                println!(
                    "round {round:>2}: REPAIR — {} word(s) patched in place, distance -> {d}",
                    patches.len()
                );
            }
            PreparedAction::Nothing => println!("round {round:>2}: no action (matured or stable)"),
        }
        optimizer.commit(now, action, &mut trident, &mut dlt).unwrap();
        // The better the distance, the lower the observed latency.
        latency = latency.saturating_sub(25).max(40);
    }

    let t = trident.trace(trace).unwrap();
    println!("\nfinal trace body ({} instructions):", t.insts.len());
    for (i, ti) in t.insts.iter().enumerate() {
        let marker = if ti.synthetic { " <- inserted" } else { "" };
        match ti.op {
            TraceOp::Real(inst) => println!("  [{i:>2}] {inst}{marker}"),
            TraceOp::CondExit { cond, ra, to } => {
                println!("  [{i:>2}] exit-if {cond:?} {ra} -> {to:#x}")
            }
            TraceOp::JumpBack { to } => println!("  [{i:>2}] jump-back -> {to:#x}"),
            TraceOp::LoopBack => println!("  [{i:>2}] loop-back"),
        }
    }
}
